// MetricsRegistry: exact totals under concurrency, histogram bucketing,
// registration stability, reports.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace picola::obs {
namespace {

TEST(CounterTest, SingleThreadExact) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c]() {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAddMax) {
  Gauge g;
  g.set(10);
  EXPECT_EQ(g.value(), 10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.max_of(5);
  EXPECT_EQ(g.value(), 7);  // not lowered
  g.max_of(20);
  EXPECT_EQ(g.value(), 20);
}

TEST(HistogramTest, Log2Bucketing) {
  Histogram h;
  h.record(0);   // bucket 0
  h.record(1);   // bit_width 1 -> bucket 1
  h.record(2);   // bucket 2
  h.record(3);   // bucket 2
  h.record(4);   // bucket 3
  h.record(1023);  // bucket 10
  Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 6u);
  EXPECT_EQ(s.sum, 0u + 1 + 2 + 3 + 4 + 1023);
  EXPECT_EQ(s.max, 1023u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 2u);
  EXPECT_EQ(s.buckets[3], 1u);
  EXPECT_EQ(s.buckets[10], 1u);
}

TEST(HistogramTest, PercentileIsBucketUpperBoundCappedByMax) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.record(10);  // bucket 4, upper bound 15
  h.record(1000);                             // bucket 10
  Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.percentile(0.5), 15u);
  EXPECT_EQ(s.percentile(1.0), 1000u);  // capped by the observed max
  EXPECT_DOUBLE_EQ(s.mean(), (99.0 * 10 + 1000) / 100.0);
}

TEST(HistogramTest, ConcurrentRecordsAreExact) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h]() {
      for (int i = 0; i < kPerThread; ++i)
        h.record(static_cast<uint64_t>(i % 7));
    });
  for (auto& t : threads) t.join();
  Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t expected_sum = 0;
  for (int i = 0; i < kPerThread; ++i) expected_sum += static_cast<uint64_t>(i % 7);
  EXPECT_EQ(s.sum, expected_sum * kThreads);
  EXPECT_EQ(s.max, 6u);
}

TEST(MetricsRegistryTest, SameNameSameMetric) {
  MetricsRegistry r;
  Counter& a = r.counter("x");
  Counter& b = r.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(r.counter_value("x"), 3u);
  EXPECT_EQ(r.counter_value("missing"), 0u);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsReferencesValid) {
  MetricsRegistry r;
  Counter& c = r.counter("c");
  Histogram& h = r.histogram("h");
  c.add(5);
  h.record(100);
  r.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
  c.add(1);  // the old reference still feeds the registry
  EXPECT_EQ(r.counter_value("c"), 1u);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndUse) {
  MetricsRegistry r;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&r]() {
      for (int i = 0; i < 1000; ++i) {
        r.counter("shared").add(1);
        r.histogram("lat").record(static_cast<uint64_t>(i));
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(r.counter_value("shared"), 8000u);
  EXPECT_EQ(r.histogram("lat").snapshot().count, 8000u);
}

TEST(MetricsRegistryTest, ReportsContainEveryMetricSorted) {
  MetricsRegistry r;
  r.counter("b/count").add(2);
  r.counter("a/count").add(1);
  r.gauge("depth").set(7);
  r.histogram("z/lat").record(1500000);  // 1.5 ms

  std::string text = r.report_text();
  EXPECT_NE(text.find("a/count count=1"), std::string::npos) << text;
  EXPECT_NE(text.find("b/count count=2"), std::string::npos);
  EXPECT_NE(text.find("depth gauge=7"), std::string::npos);
  EXPECT_NE(text.find("z/lat count=1 total_ms=1.500"), std::string::npos);
  EXPECT_LT(text.find("a/count"), text.find("b/count"));

  std::string json = r.report_json();
  EXPECT_NE(json.find("\"a/count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"depth\":7"), std::string::npos);
  EXPECT_NE(json.find("\"z/lat\":{\"count\":1,\"sum_ns\":1500000"),
            std::string::npos);
}

TEST(MetricsRegistryTest, HistogramJsonCarriesNsAndMsDualsWithP95) {
  MetricsRegistry r;
  r.histogram("lat").record(2'000'000);  // 2 ms
  std::string json = r.report_json();
  // Every duration appears twice — raw nanoseconds and the millisecond
  // dual — and p95 sits alongside the existing percentiles.
  for (const char* key :
       {"\"count\":", "\"sum_ns\":", "\"max_ns\":", "\"mean_ns\":",
        "\"p50_ns\":", "\"p90_ns\":", "\"p95_ns\":", "\"p99_ns\":",
        "\"sum_ms\":", "\"max_ms\":", "\"mean_ms\":", "\"p50_ms\":",
        "\"p90_ms\":", "\"p95_ms\":", "\"p99_ms\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
  // The text report shows p95 too.
  std::string text = r.report_text();
  EXPECT_NE(text.find("p95_ms="), std::string::npos) << text;
}

TEST(MetricsRegistryTest, CounterAndGaugeSnapshotsAreSortedViews) {
  MetricsRegistry r;
  r.counter("b").add(2);
  r.counter("a").add(1);
  r.gauge("g2").set(-5);
  r.gauge("g1").set(7);
  auto counters = r.counter_snapshots();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "a");
  EXPECT_EQ(counters[0].second, 1u);
  EXPECT_EQ(counters[1].first, "b");
  EXPECT_EQ(counters[1].second, 2u);
  auto gauges = r.gauge_snapshots();
  ASSERT_EQ(gauges.size(), 2u);
  EXPECT_EQ(gauges[0].first, "g1");
  EXPECT_EQ(gauges[0].second, 7);
  EXPECT_EQ(gauges[1].first, "g2");
  EXPECT_EQ(gauges[1].second, -5);
}

TEST(ObsSwitchTest, EnabledDefaultsOffAndToggles) {
  // Other tests must leave the switch off; this test restores it too.
  EXPECT_FALSE(enabled());
  set_enabled(true);
  EXPECT_TRUE(enabled());
  set_enabled(false);
  EXPECT_FALSE(enabled());
}

TEST(ClockTest, FakeClockOverridesAndRestores) {
  static uint64_t fake_now = 0;
  fake_now = 12345;
  set_clock_for_testing(+[]() { return fake_now; });
  EXPECT_EQ(now_ns(), 12345u);
  fake_now = 99999;
  EXPECT_EQ(now_ns(), 99999u);
  set_clock_for_testing(nullptr);
  uint64_t a = now_ns();
  uint64_t b = now_ns();
  EXPECT_LE(a, b);  // monotonic real clock again
}

}  // namespace
}  // namespace picola::obs
