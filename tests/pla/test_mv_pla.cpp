#include <gtest/gtest.h>

#include "pla/mv_pla.h"

namespace picola {
namespace {

constexpr const char* kSample = R"(.mv 4 2 3 2
01 110 10
1- 001 01
.dc
-- 010 01
.e
)";

TEST(MvPla, ParsesSample) {
  MvPlaParseResult r = parse_mv_pla(kSample);
  ASSERT_TRUE(r.ok()) << r.error;
  const MvPla& p = r.pla;
  EXPECT_EQ(p.num_binary, 2);
  EXPECT_EQ(p.mv_sizes, (std::vector<int>{3, 2}));
  ASSERT_EQ(p.rows.size(), 3u);
  EXPECT_FALSE(p.rows[0].is_dc);
  EXPECT_TRUE(p.rows[2].is_dc);
  EXPECT_EQ(p.validate(), "");
}

TEST(MvPla, SpaceAndCovers) {
  MvPlaParseResult r = parse_mv_pla(kSample);
  ASSERT_TRUE(r.ok());
  CubeSpace s = r.pla.space();
  EXPECT_EQ(s.num_vars(), 4);
  EXPECT_EQ(s.parts(2), 3);
  EXPECT_EQ(s.parts(3), 2);
  Cover on = r.pla.onset();
  Cover dc = r.pla.dcset();
  EXPECT_EQ(on.size(), 2);
  EXPECT_EQ(dc.size(), 1);
  // Row 0: binary 01, mv literal {0,1}, output part 0.
  EXPECT_EQ(on[0].binary_value(s, 0), 0);
  EXPECT_EQ(on[0].binary_value(s, 1), 1);
  EXPECT_TRUE(on[0].test(s, 2, 0));
  EXPECT_TRUE(on[0].test(s, 2, 1));
  EXPECT_FALSE(on[0].test(s, 2, 2));
  EXPECT_TRUE(on[0].test(s, 3, 0));
  EXPECT_FALSE(on[0].test(s, 3, 1));
}

TEST(MvPla, RoundTrip) {
  MvPlaParseResult r1 = parse_mv_pla(kSample);
  ASSERT_TRUE(r1.ok());
  std::string text = write_mv_pla(r1.pla);
  MvPlaParseResult r2 = parse_mv_pla(text);
  ASSERT_TRUE(r2.ok()) << r2.error;
  EXPECT_EQ(r2.pla.rows.size(), 3u);
  EXPECT_EQ(r2.pla.onset().size(), 2);
  EXPECT_EQ(r2.pla.dcset().size(), 1);
}

TEST(MvPla, NoBinaryVariables) {
  MvPlaParseResult r = parse_mv_pla(".mv 2 0 4 2\n1100 10\n0011 01\n.e\n");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.pla.num_binary, 0);
  EXPECT_EQ(r.pla.onset().size(), 2);
}

TEST(MvPla, Errors) {
  EXPECT_FALSE(parse_mv_pla("01 10 1\n").ok());                     // no .mv
  EXPECT_FALSE(parse_mv_pla(".mv 3 2 6 4\n.e\n").ok());             // count
  EXPECT_FALSE(parse_mv_pla(".mv 4 2 3 2\n01 110\n.e\n").ok());     // fields
  EXPECT_FALSE(parse_mv_pla(".mv 4 2 3 2\n01 11 10\n.e\n").ok());   // width
  EXPECT_FALSE(parse_mv_pla(".mv 4 2 3 2\n01 11- 10\n.e\n").ok());  // bad char
  EXPECT_FALSE(parse_mv_pla(".mv 4 2 3 2\n.bogus\n.e\n").ok());
}

}  // namespace
}  // namespace picola
