#include <gtest/gtest.h>

#include "pla/pla.h"
#include "pla/pla_io.h"

namespace picola {
namespace {

Pla sample() {
  Pla p;
  p.num_inputs = 3;
  p.num_outputs = 2;
  p.type = PlaType::FD;
  p.rows = {{"01-", "10"}, {"1--", "01"}, {"000", "1-"}};
  return p;
}

TEST(Pla, Validate) {
  Pla p = sample();
  EXPECT_EQ(p.validate(), "");
  p.rows.push_back({"01", "10"});
  EXPECT_NE(p.validate(), "");
  p = sample();
  p.rows[0].in = "01x";
  EXPECT_NE(p.validate(), "");
}

TEST(Pla, SpaceLayout) {
  Pla p = sample();
  CubeSpace s = p.space();
  EXPECT_EQ(s.num_vars(), 4);
  EXPECT_EQ(s.output_var(), 3);
  EXPECT_EQ(s.parts(3), 2);
}

TEST(Pla, OnsetDcsetSplit) {
  Pla p = sample();
  Cover on = p.onset();
  Cover dc = p.dcset();
  EXPECT_EQ(on.size(), 3);  // all rows assert some output
  EXPECT_EQ(dc.size(), 1);  // row "000 1-" has a '-' output
  // The dc cube asserts only output 1.
  const CubeSpace& s = on.space();
  EXPECT_FALSE(dc[0].test(s, 3, 0));
  EXPECT_TRUE(dc[0].test(s, 3, 1));
}

TEST(Pla, TypeFIgnoresDashOutputs) {
  Pla p = sample();
  p.type = PlaType::F;
  EXPECT_TRUE(p.dcset().empty());
}

TEST(Pla, FromCoverRoundTrip) {
  Pla p = sample();
  Pla q = Pla::from_cover(p.onset(), p.dcset());
  EXPECT_EQ(q.num_inputs, 3);
  EXPECT_EQ(q.num_outputs, 2);
  EXPECT_EQ(q.validate(), "");
  // Functions must match: compare via covers.
  Cover on1 = p.onset(), on2 = q.onset();
  EXPECT_EQ(on1.count_minterms_exact(), on2.count_minterms_exact());
}

TEST(Pla, Area) {
  Pla p = sample();
  EXPECT_EQ(p.area(), 3 * (2 * 3 + 2));
}

TEST(PlaIo, RoundTrip) {
  Pla p = sample();
  p.input_labels = {"a", "b", "c"};
  p.output_labels = {"x", "y"};
  std::string text = write_pla(p);
  PlaParseResult r = parse_pla(text);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.pla.num_inputs, 3);
  EXPECT_EQ(r.pla.num_outputs, 2);
  EXPECT_EQ(r.pla.rows.size(), 3u);
  EXPECT_EQ(r.pla.input_labels, p.input_labels);
  EXPECT_EQ(r.pla.rows[0].in, "01-");
  EXPECT_EQ(r.pla.rows[2].out, "1-");
}

TEST(PlaIo, ParsesComments) {
  PlaParseResult r = parse_pla(
      "# header\n.i 2\n.o 1\n01 1  # a cube\n\n.e\n");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.pla.rows.size(), 1u);
}

TEST(PlaIo, AcceptsTwoAsDash) {
  PlaParseResult r = parse_pla(".i 2\n.o 1\n21 1\n.e\n");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.pla.rows[0].in, "-1");
}

TEST(PlaIo, RejectsMissingHeader) {
  EXPECT_FALSE(parse_pla("01 1\n").ok());
}

TEST(PlaIo, RejectsWidthMismatch) {
  EXPECT_FALSE(parse_pla(".i 3\n.o 1\n01 1\n.e\n").ok());
}

TEST(PlaIo, ParsesType) {
  PlaParseResult r = parse_pla(".i 1\n.o 1\n.type fr\n1 1\n0 0\n.e\n");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.pla.type, PlaType::FR);
  EXPECT_EQ(r.pla.offset_rows().size(), 1);
}

TEST(PlaIo, WarnsOnUnknownDirective) {
  PlaParseResult r = parse_pla(".i 1\n.o 1\n.phase 1\n1 1\n.e\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.warnings.size(), 1u);
}

}  // namespace
}  // namespace picola
