// In-process tests of the command-line driver.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/cli.h"
#include "constraints/constraint_io.h"
#include "kiss/benchmarks.h"
#include "kiss/kiss_io.h"
#include "sat/dimacs.h"
#include "sat/encode.h"
#include "sat/solver.h"

namespace picola {
namespace {

class CliTest : public ::testing::Test {
 protected:
  std::string temp_path(const std::string& name) {
    return testing::TempDir() + "picola_cli_" + name;
  }
  void write(const std::string& path, const std::string& text) {
    std::ofstream out(path);
    out << text;
  }
  std::string slurp(const std::string& path) {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
  int run(std::vector<std::string> args) {
    out_.str("");
    err_.str("");
    return cli::run(args, out_, err_);
  }
  std::ostringstream out_, err_;
};

constexpr const char* kCon =
    ".n 15\n1 5 7 13\n0 1\n8 13\n5 6 7 8 13\n.e\n";

TEST_F(CliTest, EncodeConFile) {
  std::string in = temp_path("paper.con");
  write(in, kCon);
  EXPECT_EQ(run({"encode", in}), 0);
  EXPECT_NE(out_.str().find("satisfied 3/4"), std::string::npos) << out_.str();
  EXPECT_NE(out_.str().find("5 implementation cubes"), std::string::npos);
}

TEST_F(CliTest, EncodeWritesCodesFile) {
  std::string in = temp_path("w.con");
  std::string codes = temp_path("codes.txt");
  write(in, kCon);
  EXPECT_EQ(run({"encode", in, "-o", codes, "--quiet"}), 0);
  std::string text = slurp(codes);
  // 15 symbols, one line each, 4-bit codes.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 15);
}

TEST_F(CliTest, EncodeAllAlgorithms) {
  std::string in = temp_path("all.con");
  write(in, kCon);
  for (const char* algo :
       {"picola", "nova", "enc", "anneal", "sequential", "gray", "random"}) {
    EXPECT_EQ(run({"encode", in, "--algorithm", algo, "--quiet"}), 0) << algo;
  }
}

TEST_F(CliTest, EncodeRejectsUnknownAlgorithm) {
  std::string in = temp_path("bad.con");
  write(in, kCon);
  EXPECT_NE(run({"encode", in, "--algorithm", "magic"}), 0);
}

TEST_F(CliTest, EncodeFromKiss) {
  std::string in = temp_path("m.kiss2");
  write(in, write_kiss(make_example_fsm("vending")));
  EXPECT_EQ(run({"encode", in, "--quiet"}), 0);
  EXPECT_NE(out_.str().find("algorithm picola"), std::string::npos);
}

TEST_F(CliTest, AssignProducesVerifiedPla) {
  std::string in = temp_path("t.kiss2");
  std::string outpla = temp_path("t.pla");
  write(in, write_kiss(make_example_fsm("traffic")));
  EXPECT_EQ(run({"assign", in, "-o", outpla}), 0);
  EXPECT_NE(out_.str().find("self-check PASS"), std::string::npos)
      << out_.str();
  EXPECT_NE(slurp(outpla).find(".i "), std::string::npos);
}

TEST_F(CliTest, MinimizeShrinksPla) {
  std::string in = temp_path("f.pla");
  write(in, ".i 3\n.o 1\n000 1\n001 1\n011 1\n111 1\n.e\n");
  EXPECT_EQ(run({"minimize", in}), 0);
  EXPECT_NE(out_.str().find("4 -> 2 terms"), std::string::npos) << out_.str();
}

TEST_F(CliTest, MinimizeExactMode) {
  std::string in = temp_path("e.pla");
  write(in, ".i 3\n.o 1\n000 1\n001 1\n011 1\n111 1\n.e\n");
  EXPECT_EQ(run({"minimize", in, "--exact"}), 0);
  EXPECT_NE(out_.str().find("-> 2 terms"), std::string::npos);
}

TEST_F(CliTest, InfoOnAllKinds) {
  std::string con = temp_path("i.con");
  write(con, kCon);
  EXPECT_EQ(run({"info", con}), 0);
  EXPECT_NE(out_.str().find("15 symbols"), std::string::npos);

  std::string kiss = temp_path("i.kiss2");
  write(kiss, write_kiss(make_example_fsm("elevator")));
  EXPECT_EQ(run({"info", kiss}), 0);
  EXPECT_NE(out_.str().find("KISS2 FSM"), std::string::npos);

  std::string pla = temp_path("i.pla");
  write(pla, ".i 2\n.o 1\n01 1\n.e\n");
  EXPECT_EQ(run({"info", pla}), 0);
  EXPECT_NE(out_.str().find("PLA: 2 inputs"), std::string::npos);
}

TEST_F(CliTest, EncodeInputOnMvPla) {
  std::string in = temp_path("f.mv");
  write(in,
        ".mv 4 2 6 4\n00 100110 1000\n01 100110 1000\n1- 100110 0100\n"
        "-0 011000 0010\n-1 011000 0011\n00 000001 0001\n01 000001 1001\n"
        "1- 000001 0001\n.e\n");
  EXPECT_EQ(run({"encode-input", in}), 0);
  EXPECT_NE(out_.str().find("encoded with 3 bits"), std::string::npos)
      << out_.str();
  EXPECT_NE(out_.str().find(".mv"), std::string::npos);
}

TEST_F(CliTest, EncodeInputRejectsBadVar) {
  std::string in = temp_path("v.mv");
  write(in, ".mv 2 1 3\n0 111\n.e\n");
  EXPECT_NE(run({"encode-input", in, "--var", "0"}), 0);
  EXPECT_NE(run({"encode-input", in, "--var", "9"}), 0);
}

TEST_F(CliTest, ErrorsAreGraceful) {
  EXPECT_NE(run({}), 0);
  EXPECT_NE(run({"frobnicate", "x"}), 0);
  EXPECT_NE(run({"encode"}), 0);
  EXPECT_NE(run({"encode", temp_path("missing.con")}), 0);
  EXPECT_NE(run({"encode", temp_path("missing.con"), "--bits"}), 0);
  std::string junk = temp_path("junk.con");
  write(junk, "????");
  EXPECT_NE(run({"info", junk}), 0);
}

TEST_F(CliTest, EncodeReportsBadBitsInsteadOfCrashing) {
  // Regression: --bits beyond 31 used to truncate codes silently, and a
  // too-short length tripped an assert.  Both must exit with a message.
  std::string in = temp_path("badbits.con");
  write(in, kCon);
  EXPECT_EQ(run({"encode", in, "--bits", "2"}), 1);
  EXPECT_NE(err_.str().find("too small"), std::string::npos) << err_.str();
  EXPECT_EQ(run({"encode", in, "--bits", "40"}), 1);
  EXPECT_NE(err_.str().find("31"), std::string::npos) << err_.str();
}

TEST_F(CliTest, EncodeRejectsMalformedConstraintLines) {
  std::string in = temp_path("dup.con");
  write(in, ".n 4\n0 1 0\n.e\n");
  EXPECT_NE(run({"encode", in}), 0);
  EXPECT_NE(err_.str().find("duplicate member"), std::string::npos)
      << err_.str();
}

TEST_F(CliTest, EncodeSelfCheckFlag) {
  std::string in = temp_path("selfcheck.con");
  write(in, kCon);
  EXPECT_EQ(run({"encode", in, "--self-check", "--quiet"}), 0);
  EXPECT_NE(out_.str().find("satisfied 3/4"), std::string::npos)
      << out_.str();
}

TEST_F(CliTest, EncodeBackendPortfolio) {
  std::string in = temp_path("backend.con");
  write(in, kCon);
  EXPECT_EQ(run({"encode", in, "--backend", "portfolio", "--restarts", "2",
                 "--quiet"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("# backend portfolio winner "), std::string::npos)
      << out_.str();
}

TEST_F(CliTest, EncodeBackendSatWinsOnOwnPlan) {
  std::string in = temp_path("backend_sat.con");
  write(in, ".n 6\n0 1 2\n2 3\n4 5\n1 3 5\n.e\n");
  EXPECT_EQ(run({"encode", in, "--backend", "sat", "--quiet"}), 0)
      << err_.str();
  EXPECT_NE(out_.str().find("# backend sat winner sat"), std::string::npos)
      << out_.str();
}

TEST_F(CliTest, EncodeBackendRejectsBadValues) {
  std::string in = temp_path("backend_bad.con");
  write(in, kCon);
  EXPECT_NE(run({"encode", in, "--backend", "cplex"}), 0);
  EXPECT_NE(run({"encode", in, "--backend", "sat", "--algorithm", "picola"}),
            0);
  EXPECT_NE(run({"encode", in, "--backend", "sat", "--card", "magic"}), 0);
}

TEST_F(CliTest, BatchBackendReportsWinnerInJson) {
  std::string in = temp_path("batch_backend.con");
  write(in, kCon);
  std::string list = temp_path("batch_backend.list");
  write(list, in + "\n");
  EXPECT_EQ(run({"batch", list, "--backend", "portfolio", "--restarts", "2",
                 "--json"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("\"backend\":\""), std::string::npos)
      << out_.str();
}

TEST_F(CliTest, BatchCacheDirWarmRestartHitsCache) {
  std::string in = temp_path("batch_persist.con");
  write(in, kCon);
  std::string list = temp_path("batch_persist.list");
  write(list, in + "\n");
  std::string dir = temp_path("batch_persist_cache");

  // Cold run populates the durable cache (shutdown snapshot).
  EXPECT_EQ(run({"batch", list, "--restarts", "2", "--cache-dir", dir,
                 "--snapshot-interval", "-1", "--json"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("\"cache_hits\":0"), std::string::npos)
      << out_.str();

  // Warm run — a fresh service recovers the dir: same job, cache hit.
  EXPECT_EQ(run({"batch", list, "--restarts", "2", "--cache-dir", dir,
                 "--snapshot-interval", "-1", "--json"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("\"cache_hits\":1"), std::string::npos)
      << out_.str();

  for (const std::string& f :
       {dir + "/snapshot.pcs", dir + "/snapshot.pcs.tmp"})
    std::remove(f.c_str());
  // Journals (if any) share the dir; sweep leftovers before rmdir.
  std::remove((dir + "/journal-1.pcj").c_str());
  rmdir(dir.c_str());
}

TEST_F(CliTest, SnapshotIntervalRequiresCacheDir) {
  std::string in = temp_path("si.con");
  write(in, kCon);
  std::string list = temp_path("si.list");
  write(list, in + "\n");
  EXPECT_NE(run({"batch", list, "--snapshot-interval", "5"}), 0);
  EXPECT_NE(err_.str().find("--cache-dir"), std::string::npos) << err_.str();
}

TEST_F(CliTest, SatExportRoundTripReproducesVerdict) {
  std::string in = temp_path("se.con");
  write(in, kCon);
  std::string cnfpath = temp_path("se.cnf");
  EXPECT_EQ(run({"sat-export", in, "--bits", "4", "-o", cnfpath}), 0)
      << err_.str();
  std::string text = slurp(cnfpath);
  EXPECT_EQ(text.rfind("c picola sat-export", 0), 0u) << text.substr(0, 80);

  // The exported formula parses back and solves to the same verdict as
  // the directly built reduction.
  sat::DimacsParseResult parsed = sat::parse_dimacs(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ConstraintParseResult cs = parse_constraints(kCon);
  ASSERT_TRUE(cs.ok());
  sat::FaceCnf direct = sat::build_face_cnf(cs.set, 4);
  EXPECT_EQ(parsed.cnf.num_vars, direct.cnf.num_vars);
  EXPECT_EQ(parsed.cnf.clauses.size(), direct.cnf.clauses.size());
  sat::Solver s_parsed(parsed.cnf);
  sat::Solver s_direct(direct.cnf);
  EXPECT_EQ(s_parsed.solve(), s_direct.solve());
}

TEST_F(CliTest, SatExportToStdoutAndErrors) {
  std::string in = temp_path("se2.con");
  write(in, kCon);
  EXPECT_EQ(run({"sat-export", in}), 0) << err_.str();
  EXPECT_NE(out_.str().find("p cnf "), std::string::npos);
  EXPECT_NE(run({"sat-export", temp_path("missing.con")}), 0);
  EXPECT_NE(run({"sat-export", in, "--bits", "0"}), 0);
  EXPECT_NE(run({"sat-export", in, "--card", "magic"}), 0);
}

TEST_F(CliTest, BatchSelfCheckFlag) {
  std::string in = temp_path("batch_sc.con");
  write(in, kCon);
  std::string list = temp_path("batch_sc.list");
  write(list, in + "\n");
  EXPECT_EQ(run({"batch", list, "--self-check", "--restarts", "2"}), 0)
      << err_.str();
  EXPECT_NE(out_.str().find("1/1 files"), std::string::npos) << out_.str();
}

}  // namespace
}  // namespace picola
