#include <gtest/gtest.h>

#include <random>

#include "../test_util.h"
#include "cube/algebra.h"

namespace picola {
namespace {

using test::bcube;
using test::bcover;

TEST(Sharp, DisjointCubesUnchanged) {
  CubeSpace s = CubeSpace::binary(3);
  Cover r = sharp(bcube(s, "0--"), bcube(s, "1--"), s);
  ASSERT_EQ(r.size(), 1);
  EXPECT_EQ(r[0], bcube(s, "0--"));
}

TEST(Sharp, ContainedCubeVanishes) {
  CubeSpace s = CubeSpace::binary(3);
  EXPECT_TRUE(sharp(bcube(s, "01-"), bcube(s, "0--"), s).empty());
}

TEST(Sharp, CarvesExactComplementWithinCube) {
  CubeSpace s = CubeSpace::binary(3);
  // (---) # (000) = 7 minterms in up to 3 cubes.
  Cover r = sharp(Cube::full(s), bcube(s, "000"), s);
  EXPECT_EQ(r.count_minterms_exact(), 7u);
}

TEST(DisjointSharp, PiecesAreDisjointAndExact) {
  std::mt19937 rng(9);
  CubeSpace s = CubeSpace::binary(4);
  for (int trial = 0; trial < 100; ++trial) {
    Cover ab = test::random_cover(s, 2, rng, 0.5);
    if (ab.size() < 2) continue;
    const Cube &a = ab[0], &b = ab[1];
    Cover pieces = disjoint_sharp(a, b, s);
    // Exactness.
    uint64_t expect = 0;
    Cover::for_each_minterm(s, [&](const std::vector<int>& mt) {
      if (a.covers_minterm(s, mt) && !b.covers_minterm(s, mt)) ++expect;
    });
    EXPECT_EQ(pieces.count_minterms_exact(), expect);
    // Pairwise disjoint.
    for (int i = 0; i < pieces.size(); ++i)
      for (int j = i + 1; j < pieces.size(); ++j)
        EXPECT_NE(pieces[i].distance(pieces[j], s), 0);
  }
}

TEST(Consensus, ClassicAdjacentCubes) {
  CubeSpace s = CubeSpace::binary(2);
  // x0'x1 and x0 x1': consensus undefined (distance 2).
  EXPECT_FALSE(consensus(bcube(s, "01"), bcube(s, "10"), s).has_value());
  // x0' and x0 x1: consensus = x1.
  auto c = consensus(bcube(s, "0-"), bcube(s, "11"), s);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, bcube(s, "-1"));
}

TEST(Consensus, CoversTheSeam) {
  std::mt19937 rng(12);
  CubeSpace s = CubeSpace::binary(4);
  int found = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Cover ab = test::random_cover(s, 2, rng, 0.4);
    if (ab.size() < 2) continue;
    auto c = consensus(ab[0], ab[1], s);
    if (!c) continue;
    ++found;
    // The consensus must be an implicant of a + b.
    Cover f(s);
    f.add(ab[0]);
    f.add(ab[1]);
    Cover::for_each_minterm(s, [&](const std::vector<int>& mt) {
      if (c->covers_minterm(s, mt)) {
        EXPECT_TRUE(f.covers_minterm(mt));
      }
    });
  }
  EXPECT_GT(found, 10);
}

TEST(CoverAlgebra, IntersectAndSharpAreExact) {
  std::mt19937 rng(21);
  CubeSpace s = CubeSpace::binary(4);
  for (int trial = 0; trial < 60; ++trial) {
    Cover f = test::random_cover(s, 3, rng);
    Cover g = test::random_cover(s, 3, rng);
    Cover fi = cover_intersect(f, g);
    Cover fs = cover_sharp(f, g);
    Cover::for_each_minterm(s, [&](const std::vector<int>& mt) {
      bool in_f = f.covers_minterm(mt);
      bool in_g = g.covers_minterm(mt);
      EXPECT_EQ(fi.covers_minterm(mt), in_f && in_g);
      EXPECT_EQ(fs.covers_minterm(mt), in_f && !in_g);
    });
  }
}

TEST(CoverAlgebra, MakeDisjointPreservesFunction) {
  std::mt19937 rng(33);
  CubeSpace s = CubeSpace::binary(4);
  for (int trial = 0; trial < 60; ++trial) {
    Cover f = test::random_cover(s, 4, rng);
    Cover d = make_disjoint(f);
    EXPECT_TRUE(test::same_function(f, d));
    // Disjointness: total minterms equals the sum of cube sizes.
    uint64_t total = 0;
    for (const Cube& c : d.cubes()) total += c.num_minterms(s);
    EXPECT_EQ(total, d.count_minterms_exact());
  }
}

TEST(CoverAlgebra, WorksOnMultiValuedSpaces) {
  std::mt19937 rng(44);
  CubeSpace s = CubeSpace::multi_valued({2, 5, 3});
  for (int trial = 0; trial < 40; ++trial) {
    Cover f = test::random_cover(s, 3, rng, 0.5);
    Cover g = test::random_cover(s, 2, rng, 0.5);
    Cover fs = cover_sharp(f, g);
    Cover::for_each_minterm(s, [&](const std::vector<int>& mt) {
      EXPECT_EQ(fs.covers_minterm(mt),
                f.covers_minterm(mt) && !g.covers_minterm(mt));
    });
  }
}

}  // namespace
}  // namespace picola
