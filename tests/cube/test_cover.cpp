#include <gtest/gtest.h>

#include "cube/cover.h"

namespace picola {
namespace {

Cube bcube(const CubeSpace& s, const std::string& lits) {
  Cube c = Cube::full(s);
  for (int v = 0; v < s.num_vars(); ++v) {
    char ch = lits[static_cast<size_t>(v)];
    if (ch == '0') c.set_binary(s, v, 0);
    if (ch == '1') c.set_binary(s, v, 1);
  }
  return c;
}

TEST(Cover, RemoveEmpty) {
  CubeSpace s = CubeSpace::binary(2);
  Cover f(s);
  f.add(bcube(s, "0-"));
  Cube empty = Cube::zeros(s);
  f.add(empty);
  f.remove_empty();
  EXPECT_EQ(f.size(), 1);
}

TEST(Cover, RemoveContainedDropsSubsumedAndDuplicates) {
  CubeSpace s = CubeSpace::binary(3);
  Cover f(s);
  f.add(bcube(s, "0--"));
  f.add(bcube(s, "00-"));  // contained in 0--
  f.add(bcube(s, "0--"));  // duplicate
  f.add(bcube(s, "1-1"));  // kept
  f.remove_contained();
  EXPECT_EQ(f.size(), 2);
}

TEST(Cover, MintermEnumerationCountsCorrectly) {
  CubeSpace s = CubeSpace::binary(3);
  Cover f(s);
  f.add(bcube(s, "0--"));  // 4 minterms
  f.add(bcube(s, "-11"));  // 2 minterms, 1 overlaps 011
  EXPECT_EQ(f.count_minterms_exact(), 5u);
}

TEST(Cover, CoversMinterm) {
  CubeSpace s = CubeSpace::binary(2);
  Cover f(s);
  f.add(bcube(s, "01"));
  EXPECT_TRUE(f.covers_minterm({0, 1}));
  EXPECT_FALSE(f.covers_minterm({1, 1}));
}

TEST(Cover, ForEachMintermVisitsWholeSpace) {
  CubeSpace s = CubeSpace::multi_valued({2, 3});
  int n = 0;
  Cover::for_each_minterm(s, [&](const std::vector<int>&) { ++n; });
  EXPECT_EQ(n, 6);
}

TEST(Cover, AppendAndSort) {
  CubeSpace s = CubeSpace::binary(3);
  Cover a(s);
  a.add(bcube(s, "000"));
  Cover b(s);
  b.add(bcube(s, "1--"));
  a.append(b);
  ASSERT_EQ(a.size(), 2);
  a.sort_by_size_desc(s);
  EXPECT_EQ(a[0].num_minterms(s), 4u);
  EXPECT_EQ(a[1].num_minterms(s), 1u);
}

}  // namespace
}  // namespace picola
