#include <gtest/gtest.h>

#include "cube/space.h"

namespace picola {
namespace {

TEST(CubeSpace, BinaryLayout) {
  CubeSpace s = CubeSpace::binary(3);
  EXPECT_EQ(s.num_vars(), 3);
  EXPECT_EQ(s.total_parts(), 6);
  EXPECT_EQ(s.parts(0), 2);
  EXPECT_EQ(s.offset(0), 0);
  EXPECT_EQ(s.offset(2), 4);
  EXPECT_TRUE(s.is_binary(1));
  EXPECT_EQ(s.num_words(), 1);
  EXPECT_EQ(s.num_minterms(), 8u);
  EXPECT_EQ(s.mv_var(), -1);
  EXPECT_EQ(s.output_var(), -1);
}

TEST(CubeSpace, MultiValuedLayout) {
  CubeSpace s = CubeSpace::multi_valued({2, 5, 3});
  EXPECT_EQ(s.num_vars(), 3);
  EXPECT_EQ(s.total_parts(), 10);
  EXPECT_EQ(s.offset(1), 2);
  EXPECT_EQ(s.offset(2), 7);
  EXPECT_FALSE(s.is_binary(1));
  EXPECT_EQ(s.num_minterms(), 30u);
}

TEST(CubeSpace, FsmLayout) {
  CubeSpace s = CubeSpace::fsm_layout(4, 7, 9);
  EXPECT_EQ(s.num_vars(), 6);
  EXPECT_EQ(s.mv_var(), 4);
  EXPECT_EQ(s.output_var(), 5);
  EXPECT_EQ(s.parts(4), 7);
  EXPECT_EQ(s.parts(5), 9);
  EXPECT_EQ(s.total_parts(), 4 * 2 + 7 + 9);
}

TEST(CubeSpace, FsmLayoutWithoutMv) {
  CubeSpace s = CubeSpace::fsm_layout(3, 0, 4);
  EXPECT_EQ(s.mv_var(), -1);
  EXPECT_EQ(s.output_var(), 3);
}

TEST(CubeSpace, WordCountCrossesBoundary) {
  CubeSpace s = CubeSpace::binary(40);  // 80 parts -> 2 words
  EXPECT_EQ(s.num_words(), 2);
  CubeSpace t = CubeSpace::binary(32);  // exactly 64 parts -> 1 word
  EXPECT_EQ(t.num_words(), 1);
}

TEST(CubeSpace, MintermCountSaturates) {
  CubeSpace s = CubeSpace::binary(100);
  EXPECT_EQ(s.num_minterms(), uint64_t{1} << 62);
}

TEST(CubeSpace, Equality) {
  EXPECT_EQ(CubeSpace::binary(3), CubeSpace::binary(3));
  EXPECT_NE(CubeSpace::binary(3), CubeSpace::binary(4));
  EXPECT_NE(CubeSpace::binary(2), CubeSpace::multi_valued({2, 3}));
}

}  // namespace
}  // namespace picola
