#include <gtest/gtest.h>

#include "cube/cube.h"

namespace picola {
namespace {

class CubeBinary : public ::testing::Test {
 protected:
  CubeSpace s = CubeSpace::binary(4);
};

TEST_F(CubeBinary, FullAndZeros) {
  Cube f = Cube::full(s);
  Cube z = Cube::zeros(s);
  for (int v = 0; v < 4; ++v) {
    EXPECT_TRUE(f.var_full(s, v));
    EXPECT_TRUE(z.var_empty(s, v));
  }
  EXPECT_FALSE(f.is_empty(s));
  EXPECT_TRUE(z.is_empty(s));
  EXPECT_EQ(f.num_minterms(s), 16u);
  EXPECT_EQ(z.num_minterms(s), 0u);
}

TEST_F(CubeBinary, BinaryValueRoundTrip) {
  Cube c = Cube::full(s);
  c.set_binary(s, 0, 0);
  c.set_binary(s, 1, 1);
  c.set_binary(s, 2, 2);
  EXPECT_EQ(c.binary_value(s, 0), 0);
  EXPECT_EQ(c.binary_value(s, 1), 1);
  EXPECT_EQ(c.binary_value(s, 2), 2);
  EXPECT_EQ(c.binary_value(s, 3), 2);
  EXPECT_EQ(c.num_minterms(s), 4u);
  EXPECT_EQ(c.to_string(s), "0 1 - -");
}

TEST_F(CubeBinary, Minterm) {
  Cube m = Cube::minterm(s, {1, 0, 1, 1});
  EXPECT_EQ(m.num_minterms(s), 1u);
  EXPECT_TRUE(m.covers_minterm(s, {1, 0, 1, 1}));
  EXPECT_FALSE(m.covers_minterm(s, {1, 0, 1, 0}));
}

TEST_F(CubeBinary, Containment) {
  Cube big = Cube::full(s);
  big.set_binary(s, 0, 1);  // 1---
  Cube small = Cube::full(s);
  small.set_binary(s, 0, 1);
  small.set_binary(s, 2, 0);  // 1-0-
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
  EXPECT_TRUE(big.contains(big));
}

TEST_F(CubeBinary, DistanceAndIntersection) {
  Cube a = Cube::full(s);
  a.set_binary(s, 0, 1);
  a.set_binary(s, 1, 0);  // 10--
  Cube b = Cube::full(s);
  b.set_binary(s, 0, 0);
  b.set_binary(s, 1, 1);  // 01--
  EXPECT_EQ(a.distance(b, s), 2);
  EXPECT_TRUE(a.intersect(b).is_empty(s));

  Cube c = Cube::full(s);
  c.set_binary(s, 1, 0);  // -0--
  EXPECT_EQ(a.distance(c, s), 0);
  Cube x = a.intersect(c);
  EXPECT_FALSE(x.is_empty(s));
  EXPECT_EQ(x.binary_value(s, 0), 1);
  EXPECT_EQ(x.binary_value(s, 1), 0);
}

TEST_F(CubeBinary, Supercube) {
  Cube a = Cube::minterm(s, {0, 0, 0, 0});
  Cube b = Cube::minterm(s, {0, 1, 1, 0});
  Cube sc = a.supercube(b);
  EXPECT_EQ(sc.binary_value(s, 0), 0);
  EXPECT_EQ(sc.binary_value(s, 1), 2);
  EXPECT_EQ(sc.binary_value(s, 2), 2);
  EXPECT_EQ(sc.binary_value(s, 3), 0);
  EXPECT_EQ(sc.num_minterms(s), 4u);
}

TEST_F(CubeBinary, CofactorAgainstIntersecting) {
  // a = 10--, c = 1---  ->  a|c = -0--
  Cube a = Cube::full(s);
  a.set_binary(s, 0, 1);
  a.set_binary(s, 1, 0);
  Cube c = Cube::full(s);
  c.set_binary(s, 0, 1);
  auto cf = a.cofactor(c, s);
  ASSERT_TRUE(cf.has_value());
  EXPECT_EQ(cf->binary_value(s, 0), 2);
  EXPECT_EQ(cf->binary_value(s, 1), 0);
}

TEST_F(CubeBinary, CofactorAgainstDisjoint) {
  Cube a = Cube::full(s);
  a.set_binary(s, 0, 1);
  Cube c = Cube::full(s);
  c.set_binary(s, 0, 0);
  EXPECT_FALSE(a.cofactor(c, s).has_value());
}

TEST(CubeMv, MultiValuedLiterals) {
  CubeSpace s = CubeSpace::multi_valued({2, 5});
  Cube c = Cube::full(s);
  c.clear_var(s, 1);
  c.set(s, 1, 0);
  c.set(s, 1, 3);
  EXPECT_EQ(c.var_popcount(s, 1), 2);
  EXPECT_FALSE(c.var_full(s, 1));
  EXPECT_FALSE(c.var_empty(s, 1));
  EXPECT_EQ(c.num_minterms(s), 4u);  // 2 (binary dc) * 2 (parts)
  EXPECT_TRUE(c.covers_minterm(s, {0, 3}));
  EXPECT_FALSE(c.covers_minterm(s, {0, 2}));
  EXPECT_EQ(c.to_string(s), "- 10010");
}

TEST(CubeMv, WordBoundarySpanningVariable) {
  // 30 binary vars (60 parts) then one 10-part variable spanning the
  // 64-bit word boundary.
  std::vector<int> parts(30, 2);
  parts.push_back(10);
  CubeSpace s = CubeSpace::multi_valued(parts);
  ASSERT_EQ(s.num_words(), 2);
  Cube c = Cube::full(s);
  EXPECT_TRUE(c.var_full(s, 30));
  c.clear_var(s, 30);
  EXPECT_TRUE(c.var_empty(s, 30));
  EXPECT_TRUE(c.is_empty(s));
  c.set(s, 30, 4);  // bit 64: first bit of second word
  c.set(s, 30, 3);  // bit 63: last bit of first word
  EXPECT_EQ(c.var_popcount(s, 30), 2);
  EXPECT_TRUE(c.test(s, 30, 3));
  EXPECT_TRUE(c.test(s, 30, 4));
  EXPECT_FALSE(c.test(s, 30, 5));
}

TEST(CubeMv, SetAndClearDoNotTouchNeighbours) {
  CubeSpace s = CubeSpace::multi_valued({3, 3, 3});
  Cube c = Cube::full(s);
  c.clear_var(s, 1);
  EXPECT_TRUE(c.var_full(s, 0));
  EXPECT_TRUE(c.var_full(s, 2));
  EXPECT_TRUE(c.var_empty(s, 1));
  c.set_var_full(s, 1);
  EXPECT_EQ(c, Cube::full(s));
}

}  // namespace
}  // namespace picola
