// persist/store.h — the snapshot + journal engine: the recovery matrix
// (empty / snapshot-only / journal-only / both), torn-tail tolerance,
// hard failure on version or checksum damage, a seeded bit-flip fuzz
// proving no corrupt entry is ever loaded, degraded operation under
// injected I/O faults, and the service-level warm-restart round trip.

#include "persist/store.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "persist/codec.h"
#include "persist/io.h"
#include "service/job.h"
#include "service/result_cache.h"
#include "service/service.h"

namespace picola::persist {
namespace {

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/picola_store_test.XXXXXX";
    const char* p = mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path = p ? p : "";
  }
  ~TempDir() {
    for (const std::string& name : io::list_dir(path))
      io::unlink_file(path + "/" + name, nullptr);
    rmdir(path.c_str());
  }
};

CanonicalJob make_job(int salt) {
  Job j;
  j.set.num_symbols = 8;
  j.set.add({0, 1, 2});
  j.set.add({salt % 6, (salt + 1) % 6 + 1});
  j.restarts = 2;
  j.options.tie_break_seed = static_cast<uint64_t>(salt);
  return canonicalize(j);
}

CachedResult make_result(int cubes) {
  CachedResult r;
  r.total_cubes = cubes;
  r.picola.encoding.num_symbols = 8;
  r.picola.encoding.num_bits = 3;
  r.picola.encoding.codes = {0, 1, 2, 3, 4, 5, 6, 7};
  return r;
}

StoreOptions opts(const std::string& dir, int interval = -1) {
  StoreOptions o;
  o.dir = dir;
  o.snapshot_interval_s = interval;
  return o;
}

/// Insert `count` distinct entries through a listener-attached cache so
/// every one is journaled, then detach.  Returns fingerprint -> cubes.
std::map<uint64_t, long> journal_entries(CacheStore* store, int count,
                                         int first_salt = 0) {
  ResultCache cache(64, 4);
  store->load(&cache);
  cache.set_listener(store);
  std::map<uint64_t, long> want;
  for (int i = 0; i < count; ++i) {
    CanonicalJob j = make_job(first_salt + i);
    cache.insert(j, make_result(100 + first_salt + i));
    want[j.fingerprint] = 100 + first_salt + i;
  }
  cache.set_listener(nullptr);
  return want;
}

/// Load `dir` into a fresh cache and return fingerprint -> cubes of
/// every recovered entry (via for_each).
std::map<uint64_t, long> recovered_entries(const std::string& dir,
                                           LoadStats* stats = nullptr) {
  CacheStore store(opts(dir));
  ResultCache cache(64, 4);
  LoadStats ls = store.load(&cache);
  if (stats) *stats = ls;
  std::map<uint64_t, long> got;
  cache.for_each([&](const CanonicalJob& j, const CachedResult& r) {
    got[j.fingerprint] = r.total_cubes;
  });
  return got;
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string journal_path(const std::string& dir) {
  for (const std::string& name : io::list_dir(dir))
    if (name.rfind("journal-", 0) == 0) return dir + "/" + name;
  return "";
}

// --- recovery matrix --------------------------------------------------

TEST(StoreRecovery, EmptyDirColdStart) {
  TempDir dir;
  LoadStats ls;
  EXPECT_TRUE(recovered_entries(dir.path, &ls).empty());
  EXPECT_EQ(ls.outcome, RecoveryOutcome::kEmpty);
  EXPECT_EQ(ls.snapshot_records, 0u);
  EXPECT_EQ(ls.journal_inserts, 0u);
  EXPECT_FALSE(ls.torn_tail);
}

TEST(StoreRecovery, JournalOnly) {
  TempDir dir;
  std::map<uint64_t, long> want;
  {
    CacheStore store(opts(dir.path));
    want = journal_entries(&store, 4);
  }  // no snapshot: only journal-1.pcj holds the entries
  LoadStats ls;
  EXPECT_EQ(recovered_entries(dir.path, &ls), want);
  EXPECT_EQ(ls.outcome, RecoveryOutcome::kJournalOnly);
  EXPECT_EQ(ls.journal_inserts, 4u);
}

TEST(StoreRecovery, SnapshotOnly) {
  TempDir dir;
  std::map<uint64_t, long> want;
  {
    CacheStore store(opts(dir.path));
    ResultCache cache(64, 4);
    store.load(&cache);
    cache.set_listener(&store);
    for (int i = 0; i < 4; ++i) {
      CanonicalJob j = make_job(i);
      cache.insert(j, make_result(100 + i));
      want[j.fingerprint] = 100 + i;
    }
    cache.set_listener(nullptr);
    std::string err;
    ASSERT_TRUE(store.snapshot(cache, &err)) << err;
  }
  LoadStats ls;
  EXPECT_EQ(recovered_entries(dir.path, &ls), want);
  EXPECT_EQ(ls.outcome, RecoveryOutcome::kSnapshotOnly);
  EXPECT_EQ(ls.snapshot_records, 4u);
  EXPECT_EQ(ls.journal_inserts, 0u);
}

TEST(StoreRecovery, SnapshotPlusJournalTail) {
  TempDir dir;
  std::map<uint64_t, long> want;
  {
    CacheStore store(opts(dir.path));
    ResultCache cache(64, 4);
    store.load(&cache);
    cache.set_listener(&store);
    for (int i = 0; i < 3; ++i) {
      CanonicalJob j = make_job(i);
      cache.insert(j, make_result(100 + i));
      want[j.fingerprint] = 100 + i;
    }
    std::string err;
    ASSERT_TRUE(store.snapshot(cache, &err)) << err;
    for (int i = 3; i < 6; ++i) {  // post-snapshot tail
      CanonicalJob j = make_job(i);
      cache.insert(j, make_result(100 + i));
      want[j.fingerprint] = 100 + i;
    }
    cache.set_listener(nullptr);
  }
  LoadStats ls;
  EXPECT_EQ(recovered_entries(dir.path, &ls), want);
  EXPECT_EQ(ls.outcome, RecoveryOutcome::kBoth);
  EXPECT_EQ(ls.snapshot_records, 3u);
  EXPECT_EQ(ls.journal_inserts, 3u);
}

TEST(StoreRecovery, SnapshotRotatesEpochAndPrunesJournals) {
  TempDir dir;
  CacheStore store(opts(dir.path));
  ResultCache cache(64, 4);
  store.load(&cache);
  cache.set_listener(&store);
  cache.insert(make_job(0), make_result(1));
  const uint64_t before = store.epoch();
  std::string err;
  ASSERT_TRUE(store.snapshot(cache, &err)) << err;
  EXPECT_EQ(store.epoch(), before + 1);
  cache.set_listener(nullptr);
  // The pre-snapshot journal is pruned; snapshot.pcs present; no tmp
  // left behind.
  std::set<std::string> files;
  for (const std::string& name : io::list_dir(dir.path)) files.insert(name);
  EXPECT_TRUE(files.count("snapshot.pcs"));
  EXPECT_FALSE(files.count("snapshot.pcs.tmp"));
  EXPECT_FALSE(
      files.count("journal-" + std::to_string(before) + ".pcj"));
}

TEST(StoreRecovery, EvictionsReplayAsAbsence) {
  TempDir dir;
  {
    CacheStore store(opts(dir.path));
    // Capacity 2 x 1 shard: the third insert evicts the LRU entry, and
    // the journal must record that so replay agrees.
    ResultCache cache(2, 1);
    store.load(&cache);
    cache.set_listener(&store);
    cache.insert(make_job(0), make_result(100));
    cache.insert(make_job(1), make_result(101));
    cache.insert(make_job(2), make_result(102));
    cache.set_listener(nullptr);
  }
  LoadStats ls;
  std::map<uint64_t, long> got = recovered_entries(dir.path, &ls);
  EXPECT_EQ(ls.journal_inserts, 3u);
  EXPECT_EQ(ls.journal_evicts, 1u);
  EXPECT_EQ(got.size(), 2u);
  EXPECT_FALSE(got.count(make_job(0).fingerprint));  // the evicted one
  EXPECT_EQ(got[make_job(1).fingerprint], 101);
  EXPECT_EQ(got[make_job(2).fingerprint], 102);
}

TEST(StoreRecovery, RecoveredEntryAnswersEquivalentJobLookup) {
  TempDir dir;
  {
    CacheStore store(opts(dir.path));
    journal_entries(&store, 1, /*first_salt=*/7);
  }
  CacheStore store(opts(dir.path));
  ResultCache cache(64, 4);
  store.load(&cache);
  auto hit = cache.lookup(make_job(7));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->total_cubes, 107);
  EXPECT_FALSE(cache.lookup(make_job(8)).has_value());
}

// --- torn tails and corruption ----------------------------------------

TEST(StoreRecovery, TornTailIsTruncatedNotFatal) {
  TempDir dir;
  std::map<uint64_t, long> want;
  {
    CacheStore store(opts(dir.path));
    want = journal_entries(&store, 3);
  }
  // A kill -9 mid-append leaves a short final record: chop bytes off the
  // journal and the loader must keep every whole record before the tear.
  std::string jp = journal_path(dir.path);
  ASSERT_FALSE(jp.empty());
  std::string bytes = file_bytes(jp);
  write_bytes(jp, bytes.substr(0, bytes.size() - 5));

  LoadStats ls;
  std::map<uint64_t, long> got = recovered_entries(dir.path, &ls);
  EXPECT_TRUE(ls.torn_tail);
  EXPECT_EQ(ls.journal_inserts, 2u);  // the third record was torn
  EXPECT_EQ(got.size(), 2u);
  for (const auto& [fp, cubes] : got) EXPECT_EQ(want.at(fp), cubes);
}

TEST(StoreRecovery, TornFrameHeaderTolerated) {
  TempDir dir;
  {
    CacheStore store(opts(dir.path));
    journal_entries(&store, 2);
  }
  std::string jp = journal_path(dir.path);
  std::string bytes = file_bytes(jp);
  // Leave 3 bytes of the second record's 8-byte frame header.
  // Frame layout: u32 len + u32 crc + payload.
  size_t first_end = 20;  // journal header
  uint32_t len0 = 0;
  std::memcpy(&len0, bytes.data() + first_end, 4);
  size_t second_at = first_end + 8 + len0;
  write_bytes(jp, bytes.substr(0, second_at + 3));

  LoadStats ls;
  std::map<uint64_t, long> got = recovered_entries(dir.path, &ls);
  EXPECT_TRUE(ls.torn_tail);
  EXPECT_EQ(got.size(), 1u);
}

TEST(StoreRecovery, AppendAfterTornTailTruncatesIt) {
  TempDir dir;
  {
    CacheStore store(opts(dir.path));
    journal_entries(&store, 3);
  }
  std::string jp = journal_path(dir.path);
  std::string bytes = file_bytes(jp);
  write_bytes(jp, bytes.substr(0, bytes.size() - 5));
  {
    // Reopen for appending: the torn bytes must be cut before the new
    // record lands, or the journal is permanently unparsable.
    CacheStore store(opts(dir.path));
    journal_entries(&store, 1, /*first_salt=*/50);
  }
  LoadStats ls;
  std::map<uint64_t, long> got = recovered_entries(dir.path, &ls);
  EXPECT_FALSE(ls.torn_tail);  // the tear was repaired on append
  EXPECT_EQ(got.size(), 3u);   // 2 surviving + 1 appended
  EXPECT_EQ(got.at(make_job(50).fingerprint), 150);
}

TEST(StoreRecovery, MidJournalCorruptionHardFails) {
  TempDir dir;
  {
    CacheStore store(opts(dir.path));
    journal_entries(&store, 3);
  }
  // Flip a payload byte of the FIRST record: full-length record, bad
  // CRC, not at EOF — corruption, never a torn tail.
  std::string jp = journal_path(dir.path);
  std::string bytes = file_bytes(jp);
  bytes[20 + 8 + 4] ^= 0x40;  // header + frame + a few payload bytes in
  write_bytes(jp, bytes);

  CacheStore store(opts(dir.path));
  ResultCache cache(64, 4);
  EXPECT_THROW(store.load(&cache), std::runtime_error);
}

TEST(StoreRecovery, SnapshotVersionBumpHardFails) {
  TempDir dir;
  {
    CacheStore store(opts(dir.path));
    ResultCache cache(64, 4);
    store.load(&cache);
    cache.set_listener(&store);
    cache.insert(make_job(0), make_result(1));
    cache.set_listener(nullptr);
    std::string err;
    ASSERT_TRUE(store.snapshot(cache, &err)) << err;
  }
  std::string sp = dir.path + "/snapshot.pcs";
  std::string bytes = file_bytes(sp);
  uint32_t bad_version = kFormatVersion + 1;
  std::memcpy(bytes.data() + 4, &bad_version, 4);  // after "PSNP"
  write_bytes(sp, bytes);

  CacheStore store(opts(dir.path));
  ResultCache cache(64, 4);
  EXPECT_THROW(store.load(&cache), std::runtime_error);
}

TEST(StoreRecovery, JournalVersionBumpHardFails) {
  TempDir dir;
  {
    CacheStore store(opts(dir.path));
    journal_entries(&store, 1);
  }
  std::string jp = journal_path(dir.path);
  std::string bytes = file_bytes(jp);
  uint32_t bad_version = kFormatVersion + 1;
  std::memcpy(bytes.data() + 4, &bad_version, 4);  // after "PJNL"
  write_bytes(jp, bytes);

  CacheStore store(opts(dir.path));
  ResultCache cache(64, 4);
  EXPECT_THROW(store.load(&cache), std::runtime_error);
}

TEST(StoreRecovery, SnapshotBitFlipNeverLoadsACorruptEntry) {
  // The fuzz half of the durability contract: flip one bit anywhere in
  // the snapshot; load must either hard-fail or (never here — the file
  // CRC covers every byte) produce only entries byte-identical to the
  // originals.
  TempDir dir;
  std::map<uint64_t, long> want;
  {
    CacheStore store(opts(dir.path));
    ResultCache cache(64, 4);
    store.load(&cache);
    cache.set_listener(&store);
    for (int i = 0; i < 3; ++i) {
      CanonicalJob j = make_job(i);
      cache.insert(j, make_result(100 + i));
      want[j.fingerprint] = 100 + i;
    }
    cache.set_listener(nullptr);
    std::string err;
    ASSERT_TRUE(store.snapshot(cache, &err)) << err;
  }
  std::string sp = dir.path + "/snapshot.pcs";
  const std::string good = file_bytes(sp);
  uint64_t rng = 0x9E3779B97F4A7C15ull;
  for (int trial = 0; trial < 200; ++trial) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    size_t byte = (rng >> 16) % good.size();
    int bit = static_cast<int>((rng >> 8) & 7);
    std::string bad = good;
    bad[byte] ^= static_cast<char>(1 << bit);
    write_bytes(sp, bad);

    CacheStore store(opts(dir.path));
    ResultCache cache(64, 4);
    try {
      store.load(&cache);
      // Load survived: every entry must be one of the originals.
      cache.for_each([&](const CanonicalJob& j, const CachedResult& r) {
        auto it = want.find(j.fingerprint);
        ASSERT_NE(it, want.end())
            << "corrupt entry surfaced (byte " << byte << " bit " << bit
            << ")";
        EXPECT_EQ(r.total_cubes, it->second);
      });
    } catch (const std::runtime_error&) {
      // Hard fail is the expected reaction to damage.
    }
  }
  write_bytes(sp, good);
}

TEST(StoreRecovery, JournalBitFlipNeverLoadsACorruptEntry) {
  // Same fuzz against the journal.  Unlike the snapshot, damage in the
  // final record may legally read as a torn tail (load succeeds with a
  // strict subset) — but every entry that does load must be original.
  TempDir dir;
  std::map<uint64_t, long> want;
  {
    CacheStore store(opts(dir.path));
    want = journal_entries(&store, 3);
  }
  std::string jp = journal_path(dir.path);
  const std::string good = file_bytes(jp);
  uint64_t rng = 0xDEADBEEFCAFEF00Dull;
  for (int trial = 0; trial < 200; ++trial) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    size_t byte = (rng >> 16) % good.size();
    int bit = static_cast<int>((rng >> 8) & 7);
    std::string bad = good;
    bad[byte] ^= static_cast<char>(1 << bit);
    write_bytes(jp, bad);

    CacheStore store(opts(dir.path));
    ResultCache cache(64, 4);
    try {
      store.load(&cache);
      cache.for_each([&](const CanonicalJob& j, const CachedResult& r) {
        auto it = want.find(j.fingerprint);
        ASSERT_NE(it, want.end())
            << "corrupt entry surfaced (byte " << byte << " bit " << bit
            << ")";
        EXPECT_EQ(r.total_cubes, it->second);
      });
    } catch (const std::runtime_error&) {
    }
  }
  write_bytes(jp, good);
}

// --- degraded operation under injected faults -------------------------
// Compiled out with the injection sites themselves: these tests assert
// that injected errors fire, which requires the hooks to exist.
#ifndef PICOLA_FAULT_DISABLED

TEST(StoreFaults, AppendFailureDegradesUntilRotation) {
  TempDir dir;
  CacheStore store(opts(dir.path));
  ResultCache cache(64, 4);
  store.load(&cache);
  cache.set_listener(&store);

  {
    fault::FaultPlan plan(1);
    plan.add({"persist/write", {fault::Kind::kErrno, ENOSPC, 0, 0},
              /*after=*/0, /*every=*/1, /*max_fires=*/1000});
    fault::ScopedPlan scoped(std::move(plan));
    cache.insert(make_job(0), make_result(1));  // append fails, degrades
  }
  // Serving continued: the entry is in memory even though the journal
  // missed it.
  EXPECT_TRUE(cache.lookup(make_job(0)).has_value());

  // Rotation (a snapshot) clears the broken flag; later inserts journal
  // again and survive a restart.
  std::string err;
  ASSERT_TRUE(store.snapshot(cache, &err)) << err;
  cache.insert(make_job(1), make_result(2));
  cache.set_listener(nullptr);

  LoadStats ls;
  std::map<uint64_t, long> got = recovered_entries(dir.path, &ls);
  EXPECT_EQ(got.size(), 2u);  // snapshot caught 0, journal caught 1
  EXPECT_TRUE(got.count(make_job(0).fingerprint));
  EXPECT_TRUE(got.count(make_job(1).fingerprint));
}

TEST(StoreFaults, FailedSnapshotLeavesPreviousStateServable) {
  TempDir dir;
  CacheStore store(opts(dir.path));
  ResultCache cache(64, 4);
  store.load(&cache);
  cache.set_listener(&store);
  cache.insert(make_job(0), make_result(1));
  std::string err;
  ASSERT_TRUE(store.snapshot(cache, &err)) << err;
  cache.insert(make_job(1), make_result(2));

  {
    fault::FaultPlan plan(1);
    plan.add({"persist/rename", {fault::Kind::kErrno, EIO, 0, 0}, 0, 1, 1});
    fault::ScopedPlan scoped(std::move(plan));
    std::string why;
    EXPECT_FALSE(store.snapshot(cache, &why));
    EXPECT_FALSE(why.empty());
  }
  cache.set_listener(nullptr);

  // The old snapshot and the journal chain still reconstruct everything.
  std::map<uint64_t, long> got = recovered_entries(dir.path);
  EXPECT_EQ(got.size(), 2u);
}

TEST(StoreFaults, ShortWritesAreTransparent) {
  TempDir dir;
  std::map<uint64_t, long> want;
  {
    fault::FaultPlan plan(1);
    plan.add({"persist/write", {fault::Kind::kShortIo, 0, 3, 0},
              /*after=*/0, /*every=*/2, /*max_fires=*/1000});
    fault::ScopedPlan scoped(std::move(plan));
    CacheStore store(opts(dir.path));
    want = journal_entries(&store, 3);
  }
  EXPECT_EQ(recovered_entries(dir.path), want);
}

#else  // PICOLA_FAULT_DISABLED

TEST(StoreFaults, InstalledPlansAreInertWhenCompiledOut) {
  // Whole-tree -DPICOLA_FAULT_DISABLED=ON build: the io shim's fault
  // points are compiled out, so even an always-fire plan aimed at every
  // persist site cannot perturb journaling, snapshotting, or recovery.
  fault::FaultPlan plan(1);
  for (const char* point : {"persist/open", "persist/read", "persist/write",
                            "persist/fsync", "persist/rename",
                            "persist/truncate"})
    plan.add({point, {fault::Kind::kErrno, EIO, 0, 0}, 0, 1, 1000000});
  fault::ScopedPlan scoped(std::move(plan));

  TempDir dir;
  std::map<uint64_t, long> want;
  {
    CacheStore store(opts(dir.path));
    ResultCache cache(64, 4);
    store.load(&cache);
    cache.set_listener(&store);
    for (int i = 0; i < 3; ++i) {
      CanonicalJob j = make_job(i);
      cache.insert(j, make_result(100 + i));
      want[j.fingerprint] = 100 + i;
    }
    std::string err;
    EXPECT_TRUE(store.snapshot(cache, &err)) << err;
    cache.set_listener(nullptr);
  }
  EXPECT_EQ(recovered_entries(dir.path), want);
}

#endif  // PICOLA_FAULT_DISABLED

// --- service-level warm restart ---------------------------------------

TEST(ServicePersistence, WarmRestartServesFromRecoveredCache) {
  TempDir dir;
  Job job;
  job.set.num_symbols = 6;
  job.set.add({0, 1, 2});
  job.set.add({3, 4});
  job.restarts = 2;

  ServiceOptions so;
  so.num_threads = 2;
  so.cache_dir = dir.path;
  so.snapshot_interval_s = -1;  // shutdown snapshot only
  long cold_cubes = 0;
  {
    EncodingService service(so);
    auto f = service.submit(job);
    JobResult r = f.get();
    EXPECT_FALSE(r.cache_hit);
    cold_cubes = r.total_cubes;
  }  // destructor writes the shutdown snapshot

  EncodingService warm(so);
  EXPECT_EQ(warm.cache().size(), 1u);
  ASSERT_NE(warm.store(), nullptr);
  EXPECT_EQ(warm.store()->load_stats().outcome,
            RecoveryOutcome::kSnapshotOnly);
  auto f = warm.submit(job);
  JobResult r = f.get();
  EXPECT_TRUE(r.cache_hit);  // answered from disk state, not recomputed
  EXPECT_EQ(r.total_cubes, cold_cubes);
}

TEST(ServicePersistence, CorruptDirRefusesToStart) {
  TempDir dir;
  ServiceOptions so;
  so.num_threads = 1;
  so.cache_dir = dir.path;
  so.snapshot_interval_s = -1;
  {
    EncodingService service(so);
    Job job;
    job.set.num_symbols = 4;
    job.set.add({0, 1});
    job.restarts = 1;
    service.submit(job).wait();
  }
  std::string sp = dir.path + "/snapshot.pcs";
  std::string bytes = file_bytes(sp);
  bytes[bytes.size() / 2] ^= 0x10;
  write_bytes(sp, bytes);
  EXPECT_THROW(EncodingService bad(so), std::runtime_error);
}

TEST(ServicePersistence, DueHonoursIntervalModes) {
  TempDir dir;
  {
    CacheStore store(opts(dir.path, /*interval=*/-1));
    ResultCache cache(8, 1);
    store.load(&cache);
    cache.set_listener(&store);
    cache.insert(make_job(0), make_result(1));
    cache.set_listener(nullptr);
    EXPECT_FALSE(store.due());  // < 0: shutdown-only
  }
  {
    CacheStore store(opts(dir.path, /*interval=*/0));
    ResultCache cache(8, 1);
    store.load(&cache);
    EXPECT_TRUE(store.due());  // 0: replayed ops count as dirty
    std::string err;
    ASSERT_TRUE(store.snapshot(cache, &err)) << err;
    EXPECT_FALSE(store.due());  // clean after the snapshot
    cache.set_listener(&store);
    cache.insert(make_job(1), make_result(2));
    cache.set_listener(nullptr);
    EXPECT_TRUE(store.due());  // dirty again
  }
}

}  // namespace
}  // namespace picola::persist
