// persist/codec.h — CRC32C, the little-endian Writer/Reader pair, and
// the cache-entry record codec (round trip, truncation, drift).

#include "persist/codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>

#include "service/job.h"
#include "service/result_cache.h"

namespace picola::persist {
namespace {

// --- CRC32C -----------------------------------------------------------

TEST(Crc32c, KnownVectors) {
  // The iSCSI check value (RFC 3720 B.4): crc32c("123456789").
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c(""), 0u);
  // 32 zero bytes — another published CRC32C vector.
  EXPECT_EQ(crc32c(std::string(32, '\0')), 0x8A9136AAu);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t a = crc32c(data.substr(0, split));
    uint32_t b = crc32c(data.substr(split), a);
    EXPECT_EQ(b, crc32c(data)) << "split at " << split;
  }
}

TEST(Crc32c, DetectsSingleBitFlips) {
  std::string data = "payload under test";
  const uint32_t good = crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] ^= static_cast<char>(1 << bit);
      EXPECT_NE(crc32c(data), good) << "byte " << i << " bit " << bit;
      data[i] ^= static_cast<char>(1 << bit);
    }
  }
}

// --- Writer / Reader --------------------------------------------------

TEST(WriterReader, RoundTripEveryWidth) {
  Writer w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.i64(-1234567890123LL);
  w.f64(3.14159265358979);
  w.f64(-0.0);
  w.bytes("raw");

  Reader r(w.str());
  uint8_t a = 0;
  uint32_t b = 0;
  uint64_t c = 0;
  int32_t d = 0;
  int64_t e = 0;
  double f = 0, g = 1;
  EXPECT_TRUE(r.u8(&a));
  EXPECT_TRUE(r.u32(&b));
  EXPECT_TRUE(r.u64(&c));
  EXPECT_TRUE(r.i32(&d));
  EXPECT_TRUE(r.i64(&e));
  EXPECT_TRUE(r.f64(&f));
  EXPECT_TRUE(r.f64(&g));
  EXPECT_EQ(a, 0xAB);
  EXPECT_EQ(b, 0xDEADBEEFu);
  EXPECT_EQ(c, 0x0123456789ABCDEFull);
  EXPECT_EQ(d, -42);
  EXPECT_EQ(e, -1234567890123LL);
  EXPECT_DOUBLE_EQ(f, 3.14159265358979);
  EXPECT_EQ(g, 0.0);
  EXPECT_TRUE(std::signbit(g));
  EXPECT_EQ(r.remaining(), 3u);  // "raw"
  EXPECT_FALSE(r.done());        // not fully consumed
}

TEST(WriterReader, LittleEndianOnTheWire) {
  Writer w;
  w.u32(0x01020304u);
  ASSERT_EQ(w.str().size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(w.str()[0]), 0x04);
  EXPECT_EQ(static_cast<uint8_t>(w.str()[3]), 0x01);
}

TEST(WriterReader, UnderrunLatchesFailure) {
  Writer w;
  w.u8(7);
  Reader r(w.str());
  uint32_t v = 0;
  EXPECT_FALSE(r.u32(&v));  // only 1 byte available
  EXPECT_TRUE(r.failed());
  uint8_t b = 0;
  EXPECT_FALSE(r.u8(&b));  // failure latched: even a fitting read fails
  EXPECT_FALSE(r.done());
}

// --- record codec -----------------------------------------------------

CanonicalJob sample_job(int salt = 0) {
  Job j;
  j.set.num_symbols = 8 + salt % 3;
  j.set.add({0, 1, 2});
  j.set.add({3, 4}, 2.5);
  j.set.add({2, 5 + salt % 2, 6});
  j.restarts = 3;
  j.options.num_bits = 4;
  j.options.progress_weight = 1.25;
  j.options.tie_break_seed = 77 + static_cast<uint64_t>(salt);
  return canonicalize(j);
}

CachedResult sample_result(int cubes) {
  CachedResult r;
  r.total_cubes = cubes;
  r.backend = portfolio::BackendKind::kPicola;
  r.picola.encoding.num_symbols = 8;
  r.picola.encoding.num_bits = 4;
  r.picola.encoding.codes = {0, 1, 2, 3, 4, 5, 6, 7};
  r.picola.stats.satisfied_constraints = 3;
  r.picola.stats.solve_ms = 1.5;
  r.picola.stats.infeasible_per_column = {0, 1, 0, 2};
  r.picola.stats.infeasible_events = {{1, 2}, {3, 0}};
  return r;
}

TEST(RecordCodec, RoundTrip) {
  CanonicalJob job = sample_job();
  CachedResult result = sample_result(42);
  std::string payload = encode_record(job, result);

  CanonicalJob job2;
  CachedResult result2;
  std::string err;
  ASSERT_TRUE(decode_record(payload, &job2, &result2, &err)) << err;
  EXPECT_EQ(job2.fingerprint, job.fingerprint);
  EXPECT_TRUE(job2.equivalent(job));
  EXPECT_EQ(result2.total_cubes, result.total_cubes);
  EXPECT_EQ(result2.backend, result.backend);
  EXPECT_EQ(result2.picola.encoding.codes, result.picola.encoding.codes);
  EXPECT_EQ(result2.picola.stats.satisfied_constraints,
            result.picola.stats.satisfied_constraints);
  EXPECT_DOUBLE_EQ(result2.picola.stats.solve_ms,
                   result.picola.stats.solve_ms);
  EXPECT_EQ(result2.picola.stats.infeasible_per_column,
            result.picola.stats.infeasible_per_column);
  EXPECT_EQ(result2.picola.stats.infeasible_events,
            result.picola.stats.infeasible_events);
}

TEST(RecordCodec, EncodingIsDeterministic) {
  EXPECT_EQ(encode_record(sample_job(), sample_result(9)),
            encode_record(sample_job(), sample_result(9)));
}

TEST(RecordCodec, RejectsEveryTruncation) {
  std::string payload = encode_record(sample_job(), sample_result(1));
  for (size_t len = 0; len < payload.size(); ++len) {
    CanonicalJob job;
    CachedResult result;
    std::string err;
    EXPECT_FALSE(decode_record(std::string_view(payload.data(), len), &job,
                               &result, &err))
        << "truncated to " << len << " of " << payload.size();
  }
}

TEST(RecordCodec, RejectsTrailingGarbage) {
  std::string payload = encode_record(sample_job(), sample_result(1));
  payload.push_back('\0');
  CanonicalJob job;
  CachedResult result;
  std::string err;
  EXPECT_FALSE(decode_record(payload, &job, &result, &err));
}

TEST(RecordCodec, RejectsStoredFingerprintDrift) {
  // The record starts with the stored fingerprint; flipping a bit in it
  // must be caught by the re-canonicalisation check even though the
  // payload is structurally valid (the CRC layer lives above this).
  std::string payload = encode_record(sample_job(), sample_result(1));
  payload[0] ^= 0x01;
  CanonicalJob job;
  CachedResult result;
  std::string err;
  EXPECT_FALSE(decode_record(payload, &job, &result, &err));
  EXPECT_NE(err.find("fingerprint"), std::string::npos) << err;
}

TEST(RecordCodec, DistinctJobsDistinctPayloads) {
  EXPECT_NE(encode_record(sample_job(0), sample_result(1)),
            encode_record(sample_job(1), sample_result(1)));
}

}  // namespace
}  // namespace picola::persist
