#include <gtest/gtest.h>

#include "constraints/constraint_matrix.h"

namespace picola {
namespace {

ConstraintSet two_constraints() {
  ConstraintSet cs;
  cs.num_symbols = 4;
  cs.add({0, 1});
  cs.add({1, 2});
  return cs;
}

TEST(ConstraintMatrix, InitialEntries) {
  ConstraintMatrix m(two_constraints(), 2);
  EXPECT_EQ(m.entry(0, 0), ConstraintMatrix::kMember);
  EXPECT_EQ(m.entry(0, 1), ConstraintMatrix::kMember);
  EXPECT_EQ(m.entry(0, 2), 0);
  EXPECT_EQ(m.entry(0, 3), 0);
  EXPECT_FALSE(m.satisfied(0));
  EXPECT_EQ(m.pinned_columns(0), 0);
  EXPECT_EQ(m.free_columns(0), 0);
  EXPECT_EQ(m.max_super_dim(0), 2);
  EXPECT_EQ(m.min_super_dim(0), 1);  // ceil_log2(2)
  EXPECT_EQ(m.potential_intruders(0), (std::vector<int>{2, 3}));
}

TEST(ConstraintMatrix, RecordsPinningColumn) {
  ConstraintMatrix m(two_constraints(), 2);
  // Column 0: symbols {0,1} get 0, {2,3} get 1: pins constraint 0 and
  // satisfies both of its dichotomies.
  m.record_column({0, 0, 1, 1});
  EXPECT_EQ(m.entry(0, 2), 1);
  EXPECT_EQ(m.entry(0, 3), 1);
  EXPECT_TRUE(m.satisfied(0));
  EXPECT_EQ(m.pinned_columns(0), 1);
  EXPECT_EQ(m.max_super_dim(0), 1);
  // Constraint {1,2} has members split (1->0, 2->1): a free column.
  EXPECT_FALSE(m.satisfied(1));
  EXPECT_EQ(m.free_columns(1), 1);
  EXPECT_EQ(m.min_super_dim(1), 1);
  EXPECT_EQ(m.entry(1, 0), 0);
  EXPECT_EQ(m.entry(1, 3), 0);
}

TEST(ConstraintMatrix, ColumnIndexStoredInEntries) {
  ConstraintMatrix m(two_constraints(), 2);
  m.record_column({0, 0, 0, 0});  // uniform everywhere: pins, separates none
  EXPECT_EQ(m.entry(0, 2), 0);
  m.record_column({0, 0, 1, 0});  // second column separates symbol 2
  EXPECT_EQ(m.entry(0, 2), 2);    // satisfied by column index 1 -> entry 2
  EXPECT_EQ(m.entry(0, 3), 0);
  EXPECT_EQ(m.pinned_columns(0), 2);
}

TEST(ConstraintMatrix, MinSuperDimGrowsWithFreeColumns) {
  ConstraintSet cs;
  cs.num_symbols = 4;
  cs.add({0, 1});
  ConstraintMatrix m(cs, 3);
  m.record_column({0, 1, 0, 0});  // members split
  m.record_column({1, 0, 0, 0});  // members split again
  EXPECT_EQ(m.free_columns(0), 2);
  EXPECT_EQ(m.min_super_dim(0), 2);
  EXPECT_EQ(m.max_super_dim(0), 3);
}

TEST(ConstraintMatrix, AddConstraintReplaysColumns) {
  ConstraintMatrix m(two_constraints(), 2);
  std::vector<std::vector<int>> cols;
  cols.push_back({0, 0, 1, 1});
  m.record_column(cols[0]);
  FaceConstraint g;
  g.members = {2, 3};
  g.is_guide = true;
  int k = m.add_constraint(g, cols);
  EXPECT_EQ(k, 2);
  // The replayed column pins {2,3} and separates symbols 0 and 1.
  EXPECT_TRUE(m.satisfied(k));
  EXPECT_EQ(m.pinned_columns(k), 1);
  EXPECT_EQ(m.entry(k, 0), 1);
}

TEST(ConstraintMatrix, DeactivateFlagsRow) {
  ConstraintMatrix m(two_constraints(), 2);
  EXPECT_TRUE(m.active(0));
  m.deactivate(0);
  EXPECT_FALSE(m.active(0));
  EXPECT_TRUE(m.active(1));
}

}  // namespace
}  // namespace picola
