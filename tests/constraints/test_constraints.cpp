#include <gtest/gtest.h>

#include "constraints/dichotomy.h"
#include "constraints/face_constraint.h"
#include "encoders/trivial.h"

namespace picola {
namespace {

TEST(FaceConstraint, ContainsAndIntersect) {
  FaceConstraint a;
  a.members = {1, 3, 5};
  EXPECT_TRUE(a.contains(3));
  EXPECT_FALSE(a.contains(2));
  FaceConstraint b;
  b.members = {3, 4, 5};
  EXPECT_EQ(a.intersect(b), (std::vector<int>{3, 5}));
}

TEST(ConstraintSet, AddSortsDedupsAndDropsTrivial) {
  ConstraintSet cs;
  cs.num_symbols = 6;
  cs.add({5, 1, 3});
  cs.add({2});                   // singleton -> dropped
  cs.add({0, 1, 2, 3, 4, 5});    // full set -> dropped
  cs.add({3, 1, 5});             // duplicate -> weight merge
  ASSERT_EQ(cs.size(), 1);
  EXPECT_EQ(cs.constraints[0].members, (std::vector<int>{1, 3, 5}));
  EXPECT_DOUBLE_EQ(cs.constraints[0].weight, 2.0);
}

TEST(ConstraintSet, SeedDichotomyCount) {
  ConstraintSet cs;
  cs.num_symbols = 6;
  cs.add({0, 1});      // 4 outsiders
  cs.add({2, 3, 4});   // 3 outsiders
  EXPECT_EQ(cs.num_seed_dichotomies(), 7);
  EXPECT_EQ(seed_dichotomies(cs).size(), 7u);
}

TEST(Dichotomy, SatisfactionUnderSequentialEncoding) {
  // Codes 0..3 on 2 bits: 00, 01, 10, 11.
  Encoding e = sequential_encoding(4);
  FaceConstraint c;
  c.members = {0, 1};  // supercube 0-
  EXPECT_TRUE(dichotomy_satisfied(c, 2, e));  // bit1 separates
  EXPECT_TRUE(dichotomy_satisfied(c, 3, e));
  EXPECT_TRUE(constraint_satisfied(c, e));

  FaceConstraint d;
  d.members = {0, 3};  // supercube --: contains everyone
  EXPECT_FALSE(dichotomy_satisfied(d, 1, e));
  EXPECT_FALSE(constraint_satisfied(d, e));
  EXPECT_EQ(intruders(d, e), (std::vector<int>{1, 2}));
}

TEST(Dichotomy, CountsOverSet) {
  Encoding e = sequential_encoding(4);
  ConstraintSet cs;
  cs.num_symbols = 4;
  cs.add({0, 1});  // satisfied: 2 dichotomies
  cs.add({0, 3});  // violated: 0 dichotomies
  EXPECT_EQ(count_satisfied_constraints(cs, e), 1);
  EXPECT_EQ(count_satisfied_dichotomies(cs, e), 2);
}

TEST(Encoding, SupercubeAndUnused) {
  Encoding e = sequential_encoding(3);  // 2 bits, code 3 unused
  CodeCube cc = e.supercube({0, 1});
  EXPECT_TRUE(cc.contains(0));
  EXPECT_TRUE(cc.contains(1));
  EXPECT_FALSE(cc.contains(2));
  EXPECT_EQ(cc.dim(2), 1);
  EXPECT_EQ(e.unused_codes(), (std::vector<uint32_t>{3}));
}

TEST(Encoding, Validate) {
  Encoding e = sequential_encoding(4);
  EXPECT_EQ(e.validate(), "");
  e.codes[1] = e.codes[0];
  EXPECT_NE(e.validate(), "");
  e = sequential_encoding(4);
  e.codes[2] = 7;  // out of 2-bit range
  EXPECT_NE(e.validate(), "");
}

TEST(Encoding, MinBits) {
  EXPECT_EQ(Encoding::min_bits(2), 1);
  EXPECT_EQ(Encoding::min_bits(3), 2);
  EXPECT_EQ(Encoding::min_bits(4), 2);
  EXPECT_EQ(Encoding::min_bits(5), 3);
  EXPECT_EQ(Encoding::min_bits(16), 4);
  EXPECT_EQ(Encoding::min_bits(17), 5);
}

TEST(Encoding, MinBitsLargeCountsDoNotOverflowTheShift) {
  // Regression (UBSan): the loop compared 1 << bits in int arithmetic,
  // UB once bits reached 31 (any count above 2^30).
  EXPECT_EQ(Encoding::min_bits(1 << 30), 30);
  EXPECT_EQ(Encoding::min_bits((1 << 30) + 1), 31);
  EXPECT_EQ(Encoding::min_bits(0x7FFFFFFF), 31);
}

TEST(Encoding, ValidateRejectsTooShortCodeLength) {
  // Regression: the codes-fit check shifted in int arithmetic; the
  // too-short case must be reported, not wrapped around.
  Encoding e;
  e.num_symbols = 5;
  e.num_bits = 2;
  e.codes = {0, 1, 2, 3, 3};
  EXPECT_NE(e.validate(), "");
}

TEST(ConstraintSetValidate, AcceptsCanonicalSets) {
  ConstraintSet cs;
  cs.num_symbols = 6;
  cs.add({0, 1});
  cs.add({2, 3, 4}, 2.5);
  EXPECT_EQ(cs.validate(), "");
}

TEST(ConstraintSetValidate, RejectsDirectlyAssembledBadSets) {
  auto with = [](int n, FaceConstraint c) {
    ConstraintSet cs;
    cs.num_symbols = n;
    cs.constraints.push_back(std::move(c));
    return cs;
  };
  FaceConstraint c;
  c.members = {0, 4};
  EXPECT_NE(with(4, c).validate().find("out of range"), std::string::npos);
  c.members = {1, 0};
  EXPECT_NE(with(4, c).validate().find("not sorted"), std::string::npos);
  c.members = {0, 0, 1};
  EXPECT_NE(with(4, c).validate().find("not sorted"), std::string::npos);
  c.members = {2};
  EXPECT_NE(with(4, c).validate().find("fewer than 2"), std::string::npos);
  c.members = {0, 1, 2, 3};
  EXPECT_NE(with(4, c).validate().find("covers every"), std::string::npos);
  c.members = {0, 1};
  c.weight = 0;
  EXPECT_NE(with(4, c).validate().find("weight"), std::string::npos);
  c.weight = -1;
  EXPECT_NE(with(4, c).validate().find("weight"), std::string::npos);
}

TEST(ConstraintSetValidate, RejectsDuplicateMemberLists) {
  ConstraintSet cs;
  cs.num_symbols = 5;
  FaceConstraint a;
  a.members = {0, 1};
  cs.constraints.push_back(a);
  cs.constraints.push_back(a);
  EXPECT_NE(cs.validate().find("duplicate of constraint 0"),
            std::string::npos);
  // add() merges instead, so built-through-add sets always validate.
  ConstraintSet via_add;
  via_add.num_symbols = 5;
  via_add.add({0, 1});
  via_add.add({1, 0}, 3.0);
  EXPECT_EQ(via_add.validate(), "");
  EXPECT_EQ(via_add.size(), 1);
}

}  // namespace
}  // namespace picola
