#include <gtest/gtest.h>

#include "constraints/constraint_io.h"

namespace picola {
namespace {

TEST(ConstraintIo, ParsesAnonymousProblem) {
  ConstraintParseResult r = parse_constraints(
      "# paper example\n.n 15\n1 5 7 13\n0 1\n8 13\n5 6 7 8 13\n.e\n");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.set.num_symbols, 15);
  EXPECT_EQ(r.set.size(), 4);
  EXPECT_TRUE(r.symbol_names.empty());
  EXPECT_EQ(r.set.constraints[3].members, (std::vector<int>{5, 6, 7, 8, 13}));
}

TEST(ConstraintIo, ParsesNamedProblemWithWeights) {
  ConstraintParseResult r = parse_constraints(
      ".names idle run halt wait\nidle run * 2.5\nhalt wait\n.e\n");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.set.num_symbols, 4);
  ASSERT_EQ(r.set.size(), 2);
  EXPECT_DOUBLE_EQ(r.set.constraints[0].weight, 2.5);
  EXPECT_EQ(r.set.constraints[0].members, (std::vector<int>{0, 1}));
}

TEST(ConstraintIo, RoundTrip) {
  ConstraintSet cs;
  cs.num_symbols = 6;
  cs.add({0, 2, 4}, 3.0);
  cs.add({1, 5});
  std::string text = write_constraints(cs);
  ConstraintParseResult r = parse_constraints(text);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.set.num_symbols, 6);
  ASSERT_EQ(r.set.size(), 2);
  EXPECT_EQ(r.set.constraints[0].members, cs.constraints[0].members);
  EXPECT_DOUBLE_EQ(r.set.constraints[0].weight, 3.0);
}

TEST(ConstraintIo, NamedRoundTrip) {
  ConstraintSet cs;
  cs.num_symbols = 3;
  cs.add({0, 1});
  std::vector<std::string> names = {"a", "b", "c"};
  ConstraintParseResult r = parse_constraints(write_constraints(cs, names));
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.symbol_names, names);
  EXPECT_EQ(r.set.constraints[0].members, (std::vector<int>{0, 1}));
}

TEST(ConstraintIo, Errors) {
  EXPECT_FALSE(parse_constraints("0 1\n").ok());              // before .n
  EXPECT_FALSE(parse_constraints(".n 1\n.e\n").ok());         // too few
  EXPECT_FALSE(parse_constraints(".n 4\n0 9\n.e\n").ok());    // out of range
  EXPECT_FALSE(parse_constraints(".n 4\n0 x\n.e\n").ok());    // unknown name
  EXPECT_FALSE(parse_constraints(".n 4\n0 1 * z\n.e\n").ok()); // bad weight
  EXPECT_FALSE(parse_constraints(".foo\n").ok());             // bad directive
  EXPECT_FALSE(parse_constraints("").ok());                   // empty
}

TEST(ConstraintIo, SingletonConstraintsAreRejected) {
  // A one-symbol group imposes nothing; instead of silently dropping it
  // (pre-validation behaviour) the parser now reports the line.
  ConstraintParseResult r = parse_constraints(".n 4\n2\n0 1\n.e\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("at least 2"), std::string::npos) << r.error;
}

TEST(ConstraintIo, DuplicateMembersAreRejected) {
  ConstraintParseResult r = parse_constraints(".n 4\n0 1 0\n.e\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("duplicate member"), std::string::npos) << r.error;
}

TEST(ConstraintIo, NonPositiveOrNonFiniteWeightsAreRejected) {
  EXPECT_FALSE(parse_constraints(".n 4\n0 1 * 0\n.e\n").ok());
  EXPECT_FALSE(parse_constraints(".n 4\n0 1 * -2.5\n.e\n").ok());
  EXPECT_FALSE(parse_constraints(".n 4\n0 1 * inf\n.e\n").ok());
  EXPECT_FALSE(parse_constraints(".n 4\n0 1 * nan\n.e\n").ok());
  EXPECT_TRUE(parse_constraints(".n 4\n0 1 * 0.25\n.e\n").ok());
}

TEST(ConstraintIo, ParsedSetsAlwaysValidate) {
  ConstraintParseResult r =
      parse_constraints(".n 6\n0 1\n1 0\n2 3 4 * 2\n.e\n");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.set.validate(), "");
  // The repeated {0,1} group canonicalised into one constraint.
  EXPECT_EQ(r.set.size(), 2);
  EXPECT_DOUBLE_EQ(r.set.constraints[0].weight, 2.0);
}

}  // namespace
}  // namespace picola
