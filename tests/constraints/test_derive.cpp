#include <gtest/gtest.h>

#include "constraints/derive.h"
#include "kiss/benchmarks.h"

namespace picola {
namespace {

// The paper's Figure 1 function: two binary inputs, a 15-valued symbolic
// input, one output.  The minimised symbolic representation (Fig. 1b) is
//   00 {s2,s6,s8,s14} 1   (L1)
//   11 {s1,s2} 1          (L2)
//   01 {s9,s14} 1         (L3)
//   10 {s6,s7,s8,s9,s14} 1 (L4)
// Symbols s1..s15 are ids 0..14.
Cover figure1_onset(const CubeSpace& s) {
  struct Row {
    int i0, i1;
    std::vector<int> states;
  };
  const std::vector<Row> rows = {
      {0, 0, {1, 5, 7, 13}},
      {1, 1, {0, 1}},
      {0, 1, {8, 13}},
      {1, 0, {5, 6, 7, 8, 13}},
  };
  Cover f(s);
  // One cube per (input, state) pair: the unminimised personality.
  for (const auto& r : rows) {
    for (int st : r.states) {
      Cube c = Cube::full(s);
      c.set_binary(s, 0, r.i0);
      c.set_binary(s, 1, r.i1);
      c.clear_var(s, 2);
      c.set(s, 2, st);
      c.clear_var(s, 3);
      c.set(s, 3, 0);
      f.add(c);
    }
  }
  return f;
}

TEST(Derive, Figure1MinimisesToFourGroupCubes) {
  CubeSpace s = CubeSpace::fsm_layout(2, 15, 1);
  Cover onset = figure1_onset(s);
  Cover m = esp::minimize_cover(onset, Cover(s));
  EXPECT_EQ(m.size(), 4);
  ConstraintSet cs = extract_constraints(m, 15, s.mv_var());
  ASSERT_EQ(cs.size(), 4);
  // The four groups of Fig. 1b, in some order.
  std::vector<std::vector<int>> expected = {
      {1, 5, 7, 13}, {0, 1}, {8, 13}, {5, 6, 7, 8, 13}};
  for (const auto& want : expected) {
    bool found = false;
    for (const auto& c : cs.constraints)
      if (c.members == want) found = true;
    EXPECT_TRUE(found) << "missing constraint";
  }
}

TEST(Derive, ExtractSkipsSingletonsAndFullLiterals) {
  CubeSpace s = CubeSpace::fsm_layout(0, 4, 1);
  Cover m(s);
  Cube a = Cube::full(s);  // full state literal: no constraint
  m.add(a);
  Cube b = Cube::full(s);
  b.clear_var(s, 0);
  b.set(s, 0, 2);  // singleton
  m.add(b);
  Cube c = Cube::full(s);
  c.clear_var(s, 0);
  c.set(s, 0, 0);
  c.set(s, 0, 1);  // proper group
  m.add(c);
  ConstraintSet cs = extract_constraints(m, 4, 0);
  ASSERT_EQ(cs.size(), 1);
  EXPECT_EQ(cs.constraints[0].members, (std::vector<int>{0, 1}));
}

TEST(Derive, SymbolicCoverDimensions) {
  Fsm f = make_example_fsm("vending");
  Cover onset, dc;
  build_symbolic_cover(f, &onset, &dc);
  const CubeSpace& s = onset.space();
  EXPECT_EQ(s.num_vars(), f.num_inputs + 2);
  EXPECT_EQ(s.parts(s.mv_var()), f.num_states());
  EXPECT_EQ(s.parts(s.output_var()), f.num_states() + f.num_outputs);
  // Every transition with a next state or a '1' output appears.
  EXPECT_EQ(onset.size(), static_cast<int>(f.transitions.size()));
}

class DeriveExamples : public ::testing::TestWithParam<std::string> {};

TEST_P(DeriveExamples, ProducesConsistentConstraints) {
  Fsm f = GetParam().substr(0, 3) == "ex:" ? make_example_fsm(GetParam().substr(3))
                                           : make_benchmark(GetParam());
  DerivedConstraints d = derive_face_constraints(f);
  // Minimisation must not lose the function.
  EXPECT_TRUE(esp::equivalent(d.minimized, d.symbolic_onset, d.symbolic_dc));
  // It must do no worse than the unminimised cover.
  EXPECT_LE(d.minimized.size(), d.symbolic_onset.size());
  // All constraint members are valid state ids.
  for (const auto& c : d.set.constraints) {
    EXPECT_GE(c.size(), 2);
    EXPECT_LT(c.size(), f.num_states());
    for (int m : c.members) {
      EXPECT_GE(m, 0);
      EXPECT_LT(m, f.num_states());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Machines, DeriveExamples,
                         ::testing::Values("ex:traffic", "ex:elevator",
                                           "ex:vending", "lion9", "train11",
                                           "ex3", "dk14", "opus"));

}  // namespace
}  // namespace picola
