// net/poller.h — both readiness backends (epoll and poll) against real
// pipe fds: interest updates, timeouts, hangup reporting.  Every test
// runs on each backend so the poll fallback stays honest on Linux.

#include "net/poller.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <vector>

namespace picola::net {
namespace {

class PollerTest : public ::testing::TestWithParam<PollBackend> {};

struct Pipe {
  int rd = -1;
  int wr = -1;
  Pipe() {
    int fds[2];
    EXPECT_EQ(pipe(fds), 0);
    rd = fds[0];
    wr = fds[1];
  }
  ~Pipe() {
    if (rd >= 0) close(rd);
    if (wr >= 0) close(wr);
  }
};

TEST_P(PollerTest, TimesOutWithNothingReady) {
  Poller p(GetParam());
  Pipe pipe;
  p.add(pipe.rd, /*read=*/true, /*write=*/false);
  std::vector<PollEvent> events;
  EXPECT_EQ(p.wait(&events, 10), 0);
  EXPECT_TRUE(events.empty());
}

TEST_P(PollerTest, ReportsReadable) {
  Poller p(GetParam());
  Pipe pipe;
  p.add(pipe.rd, true, false);
  ASSERT_EQ(write(pipe.wr, "x", 1), 1);
  std::vector<PollEvent> events;
  ASSERT_EQ(p.wait(&events, 1000), 1);
  EXPECT_EQ(events[0].fd, pipe.rd);
  EXPECT_TRUE(events[0].readable);
  EXPECT_FALSE(events[0].writable);
}

TEST_P(PollerTest, ReportsWritableOnlyWhenAsked) {
  Poller p(GetParam());
  Pipe pipe;
  p.add(pipe.wr, /*read=*/false, /*write=*/false);
  std::vector<PollEvent> events;
  EXPECT_EQ(p.wait(&events, 10), 0);  // no interest, no event
  p.set(pipe.wr, false, true);
  ASSERT_EQ(p.wait(&events, 1000), 1);
  EXPECT_EQ(events[0].fd, pipe.wr);
  EXPECT_TRUE(events[0].writable);
}

TEST_P(PollerTest, SetTogglesInterestOff) {
  Poller p(GetParam());
  Pipe pipe;
  p.add(pipe.rd, true, false);
  ASSERT_EQ(write(pipe.wr, "x", 1), 1);
  std::vector<PollEvent> events;
  ASSERT_EQ(p.wait(&events, 1000), 1);
  p.set(pipe.rd, false, false);  // paused (backpressure shape)
  EXPECT_EQ(p.wait(&events, 10), 0);
  p.set(pipe.rd, true, false);  // resumed
  ASSERT_EQ(p.wait(&events, 1000), 1);
  EXPECT_TRUE(events[0].readable);
}

TEST_P(PollerTest, RemoveStopsEvents) {
  Poller p(GetParam());
  Pipe pipe;
  p.add(pipe.rd, true, false);
  ASSERT_EQ(write(pipe.wr, "x", 1), 1);
  p.remove(pipe.rd);
  std::vector<PollEvent> events;
  EXPECT_EQ(p.wait(&events, 10), 0);
}

TEST_P(PollerTest, HangupReportedOnPeerClose) {
  Poller p(GetParam());
  Pipe pipe;
  p.add(pipe.rd, true, false);
  close(pipe.wr);
  pipe.wr = -1;
  std::vector<PollEvent> events;
  ASSERT_EQ(p.wait(&events, 1000), 1);
  EXPECT_TRUE(events[0].hangup || events[0].readable);
}

TEST_P(PollerTest, MultipleFdsReadyAtOnce) {
  Poller p(GetParam());
  Pipe a, b, c;
  p.add(a.rd, true, false);
  p.add(b.rd, true, false);
  p.add(c.rd, true, false);
  ASSERT_EQ(write(a.wr, "x", 1), 1);
  ASSERT_EQ(write(c.wr, "x", 1), 1);
  std::vector<PollEvent> events;
  ASSERT_EQ(p.wait(&events, 1000), 2);
  bool saw_a = false, saw_c = false;
  for (const PollEvent& e : events) {
    if (e.fd == a.rd) saw_a = true;
    if (e.fd == c.rd) saw_c = true;
    EXPECT_NE(e.fd, b.rd);
  }
  EXPECT_TRUE(saw_a && saw_c);
}

INSTANTIATE_TEST_SUITE_P(Backends, PollerTest,
                         ::testing::Values(PollBackend::kEpoll,
                                           PollBackend::kPoll),
                         [](const auto& info) {
                           return info.param == PollBackend::kEpoll ? "epoll"
                                                                    : "poll";
                         });

}  // namespace
}  // namespace picola::net
