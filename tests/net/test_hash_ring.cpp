// net/hash_ring.h — placement determinism, preference-order coverage,
// balance, and the consistent-hashing remap bound the cluster's peer
// cache forwarding relies on (docs/CLUSTER.md).

#include "net/hash_ring.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

namespace picola::net {
namespace {

std::vector<std::string> members3() {
  return {"10.0.0.1:7000", "10.0.0.2:7000", "10.0.0.3:7000"};
}

TEST(HashRing, EmptyRingOwnsNothing) {
  HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.owner(42), -1);
  EXPECT_TRUE(ring.preference(42).empty());
}

TEST(HashRing, PlacementIsAPureFunctionOfMembersAndKey) {
  HashRing a(members3()), b(members3());
  for (uint64_t key = 0; key < 2000; ++key) {
    ASSERT_EQ(a.owner(key), b.owner(key)) << key;
    ASSERT_EQ(a.preference(key), b.preference(key)) << key;
  }
}

TEST(HashRing, MemberOrderDoesNotAffectPlacement) {
  // Indexes differ when the list is permuted, but the *names* selected
  // must not — clients and servers may list members in any order.
  HashRing a(members3());
  std::vector<std::string> shuffled = {"10.0.0.3:7000", "10.0.0.1:7000",
                                       "10.0.0.2:7000"};
  HashRing b(shuffled);
  for (uint64_t key = 0; key < 2000; ++key) {
    ASSERT_EQ(a.members()[static_cast<size_t>(a.owner(key))],
              b.members()[static_cast<size_t>(b.owner(key))])
        << key;
  }
}

TEST(HashRing, PreferenceListsEveryMemberExactlyOnce) {
  HashRing ring(members3());
  for (uint64_t key = 1; key < 500; ++key) {
    std::vector<int> prefs = ring.preference(key);
    ASSERT_EQ(prefs.size(), 3u);
    EXPECT_EQ(prefs[0], ring.owner(key));
    std::set<int> distinct(prefs.begin(), prefs.end());
    EXPECT_EQ(distinct.size(), 3u);
  }
}

TEST(HashRing, LoadSpreadsAcrossMembers) {
  HashRing ring(members3());
  std::map<int, int> owned;
  const int kKeys = 30'000;
  for (uint64_t key = 0; key < kKeys; ++key) owned[ring.owner(key)]++;
  ASSERT_EQ(owned.size(), 3u);
  for (const auto& [member, count] : owned) {
    // With 64 vnodes each, a member far below ~1/3 of the keys means the
    // projection is broken, not merely unlucky.
    EXPECT_GT(count, kKeys / 6) << "member " << member << " starved";
    EXPECT_LT(count, kKeys / 2 + kKeys / 10) << "member " << member
                                             << " overloaded";
  }
}

TEST(HashRing, RemovingAMemberOnlyRemapsItsOwnKeys) {
  std::vector<std::string> four = {"a:1", "b:1", "c:1", "d:1"};
  std::vector<std::string> three = {"a:1", "b:1", "c:1"};  // d removed
  HashRing before(four), after(three);
  for (uint64_t key = 0; key < 5000; ++key) {
    const std::string& owner_before =
        before.members()[static_cast<size_t>(before.owner(key))];
    const std::string& owner_after =
        after.members()[static_cast<size_t>(after.owner(key))];
    if (owner_before != "d:1") {
      // The consistent-hashing contract: keys not owned by the removed
      // member do not move.
      ASSERT_EQ(owner_before, owner_after) << key;
    }
  }
}

TEST(HashRing, AddingAMemberRemapsABoundedFraction) {
  std::vector<std::string> three = {"a:1", "b:1", "c:1"};
  std::vector<std::string> four = {"a:1", "b:1", "c:1", "d:1"};
  HashRing before(three), after(four);
  const int kKeys = 10'000;
  int moved = 0;
  for (uint64_t key = 0; key < kKeys; ++key) {
    const std::string& owner_before =
        before.members()[static_cast<size_t>(before.owner(key))];
    const std::string& owner_after =
        after.members()[static_cast<size_t>(after.owner(key))];
    if (owner_before != owner_after) {
      ++moved;
      // A key may only move TO the new member, never between survivors.
      ASSERT_EQ(owner_after, "d:1") << key;
    }
  }
  // Expect ~1/4 to move; anything past 40% means placement churned.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, (kKeys * 2) / 5);
}

TEST(HashRing, PointHashIsStable) {
  // Pin two values so an accidental hash-function change (which would
  // silently remap every cluster) fails loudly.
  EXPECT_EQ(HashRing::point_hash("a:1", 0), HashRing::point_hash("a:1", 0));
  EXPECT_NE(HashRing::point_hash("a:1", 0), HashRing::point_hash("a:1", 1));
  EXPECT_NE(HashRing::point_hash("a:1", 0), HashRing::point_hash("b:1", 0));
  EXPECT_NE(HashRing::mix(1), HashRing::mix(2));
}

}  // namespace
}  // namespace picola::net
