// Admin HTTP plane (net/server.h, ISSUE 7) — loopback tests of the
// /metrics Prometheus exporter, /healthz drain signalling and /statusz,
// plus wire-level trace propagation and the slow-request log.
//
// These run in the ASan and TSan CI legs: the scrape-under-hammer test
// is precisely the cross-thread traffic (8 encode clients + admin
// scrapes through one event loop) that a data race would surface in.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "check/instance_gen.h"
#include "constraints/constraint_io.h"
#include "fault/fault.h"
#include "net/client.h"
#include "net/json.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace picola::net {
namespace {

ServerOptions admin_options() {
  ServerOptions o;
  o.service.num_threads = 2;
  o.service.cache_capacity = 64;
  o.admin_port = 0;  // ephemeral
  return o;
}

const std::string& small_con() {
  static const std::string text = [] {
    check::GeneratorOptions g;
    g.min_symbols = 6;
    g.max_symbols = 8;
    g.max_constraints = 4;
    check::InstanceGenerator gen(21, g);
    return write_constraints(gen.next().set);
  }();
  return text;
}

/// Blocking loopback HTTP/1.0 GET.  Returns status code and body, or
/// nullopt on transport failure.
std::optional<std::pair<int, std::string>> http_get(uint16_t port,
                                                    const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  size_t off = 0;
  while (off < req.size()) {
    ssize_t n = ::send(fd, req.data() + off, req.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return std::nullopt;
    }
    off += static_cast<size_t>(n);
  }
  std::string resp;
  char buf[8192];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      ::close(fd);
      return std::nullopt;
    }
    if (n == 0) break;
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  size_t sp = resp.find(' ');
  size_t hdr_end = resp.find("\r\n\r\n");
  if (sp == std::string::npos || hdr_end == std::string::npos)
    return std::nullopt;
  int code = std::atoi(resp.c_str() + sp + 1);
  return std::make_pair(code, resp.substr(hdr_end + 4));
}

/// Parse an exposition body into name -> value, checking every line is
/// either a comment or `name[{labels}] value`.  Histogram samples keep
/// their label text in the key, so two scrapes compare sample-for-sample.
std::map<std::string, double> parse_exposition(const std::string& body,
                                               bool* parse_ok) {
  std::map<std::string, double> out;
  *parse_ok = true;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Only "# TYPE <name> <kind>" comments are emitted.
      if (line.rfind("# TYPE ", 0) != 0) *parse_ok = false;
      continue;
    }
    size_t val_at = line.rfind(' ');
    if (val_at == std::string::npos || val_at + 1 >= line.size()) {
      *parse_ok = false;
      continue;
    }
    std::string name = line.substr(0, val_at);
    char* end = nullptr;
    double v = std::strtod(line.c_str() + val_at + 1, &end);
    if (end == line.c_str() + val_at + 1) {
      *parse_ok = false;
      continue;
    }
    // Metric names must be mangled: picola_ prefix, no '/' anywhere.
    if (name.rfind("picola_", 0) != 0 ||
        name.find('/') != std::string::npos)
      *parse_ok = false;
    out[name] = v;
  }
  return out;
}

JsonValue inline_request(const std::string& con) {
  JsonValue r = JsonValue::make_object();
  r.set("con", JsonValue::make_string(con));
  return r;
}

template <typename Pred>
bool eventually(Pred pred) {
  for (int i = 0; i < 500; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

TEST(AdminPlane, StatuszHealthzAndErrorRoutes) {
  Server server(admin_options());
  server.start();
  ASSERT_NE(server.admin_port(), 0);

  auto health = http_get(server.admin_port(), "/healthz");
  ASSERT_TRUE(health);
  EXPECT_EQ(health->first, 200);
  EXPECT_EQ(health->second, "ok\n");

  auto statusz = http_get(server.admin_port(), "/statusz");
  ASSERT_TRUE(statusz);
  EXPECT_EQ(statusz->first, 200);
  std::string err;
  auto parsed = JsonValue::parse(statusz->second, &err);
  ASSERT_TRUE(parsed) << err;
  EXPECT_TRUE(parsed->find("uptime_seconds"));
  EXPECT_TRUE(parsed->find("build"));
  EXPECT_TRUE(parsed->find("cache"));
  EXPECT_TRUE(parsed->find("backends"));
  const JsonValue* build = parsed->find("build");
  ASSERT_TRUE(build);
  EXPECT_TRUE(build->find("version"));
  EXPECT_TRUE(build->find("git_sha"));
  EXPECT_TRUE(build->find("sanitizer"));

  auto missing = http_get(server.admin_port(), "/nope");
  ASSERT_TRUE(missing);
  EXPECT_EQ(missing->first, 404);

  // Query strings are stripped before routing.
  auto with_query = http_get(server.admin_port(), "/healthz?probe=1");
  ASSERT_TRUE(with_query);
  EXPECT_EQ(with_query->first, 200);
  server.stop();
}

TEST(AdminPlane, MetricsScrapeParseableAndMonotoneUnderHammer) {
  Server server(admin_options());
  server.start();

  // 8 clients hammer inline encodes while the scrapes happen.
  std::atomic<bool> go{true};
  std::atomic<int> completed{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&server, &go, &completed] {
      Client c;
      if (!c.connect("127.0.0.1", server.port())) return;
      while (go.load()) {
        auto r = c.call(inline_request(small_con()));
        if (!r) return;
        completed.fetch_add(1);
      }
    });
  }
  ASSERT_TRUE(eventually([&] { return completed.load() >= 8; }));

  auto scrape1 = http_get(server.admin_port(), "/metrics");
  ASSERT_TRUE(scrape1);
  EXPECT_EQ(scrape1->first, 200);
  bool ok1 = false;
  auto m1 = parse_exposition(scrape1->second, &ok1);
  EXPECT_TRUE(ok1) << "unparseable exposition line in first scrape";

  int before = completed.load();
  ASSERT_TRUE(eventually([&] { return completed.load() >= before + 8; }));

  auto scrape2 = http_get(server.admin_port(), "/metrics");
  ASSERT_TRUE(scrape2);
  bool ok2 = false;
  auto m2 = parse_exposition(scrape2->second, &ok2);
  EXPECT_TRUE(ok2) << "unparseable exposition line in second scrape";

  go.store(false);
  for (auto& t : clients) t.join();

  // The key families are present...
  for (const char* key :
       {"picola_net_responses_ok_total", "picola_net_wakeups_total",
        "picola_net_wakeup_reads_total", "picola_net_completions_total",
        "picola_pool_queue_wait_ns_count", "picola_pool_queue_depth",
        "picola_cache_shard0_ops_total", "picola_cache_entries",
        "picola_service_uptime_seconds",
        "picola_portfolio_picola_ns_count"}) {
    EXPECT_TRUE(m2.count(key)) << key << " missing from scrape";
  }
  EXPECT_TRUE(scrape2->second.find("picola_build_info{") !=
              std::string::npos);

  // ...and every counter sample is monotone between the two scrapes.
  int compared = 0;
  for (const auto& [name, v1] : m1) {
    if (name.find("_total") == std::string::npos &&
        name.find("_count") == std::string::npos &&
        name.find("_bucket") == std::string::npos)
      continue;
    auto it = m2.find(name);
    ASSERT_NE(it, m2.end()) << name << " vanished between scrapes";
    EXPECT_GE(it->second, v1) << name << " went backwards";
    ++compared;
  }
  EXPECT_GT(compared, 20);

  // Real traffic flowed through the contention metrics.
  EXPECT_GT(m2["picola_pool_queue_wait_ns_count"], 0);
  EXPECT_GT(m2["picola_net_wakeups_total"], 0);
  double shard_ops = 0;
  for (int i = 0; i < 8; ++i)
    shard_ops +=
        m2["picola_cache_shard" + std::to_string(i) + "_ops_total"];
  EXPECT_GT(shard_ops, 0);
  server.stop();
}

// Several tests below steer timing with injected faults, so they
// compile out of the PICOLA_FAULT_DISABLED build (like the injection
// tests in test_client_retry.cpp).
#ifndef PICOLA_FAULT_DISABLED

TEST(AdminPlane, HealthzReports503DuringDrain) {
  // Delay every restart task so the submitted job is still in flight
  // when the drain begins — deterministic, no timing guesswork.
  fault::FaultPlan plan(1);
  plan.add({"service/restart_task",
            {fault::Kind::kDelay, 0, 0, /*delay_ms=*/300},
            0, 1, 64, 1.0});
  fault::ScopedPlan scoped(std::move(plan));

  Server server(admin_options());
  server.start();
  const uint16_t admin_port = server.admin_port();

  Client c;
  ASSERT_TRUE(c.connect("127.0.0.1", server.port()));
  ASSERT_TRUE(c.send(inline_request(small_con()).dump()));
  ASSERT_TRUE(eventually([&] { return server.stats().inflight > 0; }));

  server.request_shutdown();
  // While the delayed job drains, the admin plane keeps serving and
  // reports not-ready.
  ASSERT_TRUE(eventually([&] {
    auto h = http_get(admin_port, "/healthz");
    return h && h->first == 503;
  }));

  auto resp = c.recv();  // the drained job still gets its answer
  EXPECT_TRUE(resp);
  server.stop();
}

TEST(AdminPlane, ExporterSurvivesFaultInjection) {
  Server server(admin_options());
  server.start();
  const uint16_t admin_port = server.admin_port();

  {
    // Inject transient EINTR/EAGAIN storms and short writes into the
    // same sys:: points the admin socket I/O uses.
    fault::FaultPlan plan(2);
    plan.add({"net/read", {fault::Kind::kErrno, EINTR, 0, 0}, 0, 2, 16, 1.0});
    plan.add({"net/write", {fault::Kind::kShortIo, 0, /*max_bytes=*/7, 0},
              0, 2, 16, 1.0});
    fault::ScopedPlan scoped(std::move(plan));
    auto h = http_get(admin_port, "/healthz");
    ASSERT_TRUE(h);
    EXPECT_EQ(h->first, 200);
    auto m = http_get(admin_port, "/metrics");
    ASSERT_TRUE(m);
    EXPECT_EQ(m->first, 200);
    bool ok = false;
    parse_exposition(m->second, &ok);
    EXPECT_TRUE(ok);
  }

  // Clean scrape after the plan is uninstalled: the loop is undamaged.
  auto after = http_get(admin_port, "/metrics");
  ASSERT_TRUE(after);
  EXPECT_EQ(after->first, 200);
  server.stop();
}

#endif  // PICOLA_FAULT_DISABLED

TEST(AdminPlane, TracePropagatesClientToRestartTask) {
  obs::set_enabled(true);
  obs::Tracer::global().set_tracing(true);
  obs::Tracer::global().clear();

  Server server(admin_options());
  server.start();

  ClientOptions copt;
  copt.trace_requests = true;
  Client c(copt);
  ASSERT_TRUE(c.connect("127.0.0.1", server.port()));
  auto resp = c.call(inline_request(small_con()));
  ASSERT_TRUE(resp);
  const uint64_t trace_id = c.last_trace_id();
  ASSERT_NE(trace_id, 0u);

  // The response echoes the id.
  const JsonValue* echoed = resp->find("trace_id");
  ASSERT_TRUE(echoed && echoed->is_string());
  EXPECT_EQ(echoed->as_string(), obs::trace_id_hex(trace_id));

  server.stop();
  obs::Tracer::global().set_tracing(false);
  obs::set_enabled(false);

  // One trace holds the whole causal chain under a single id:
  // client/request -> net/request -> service/restart_task.
  bool saw_client = false, saw_net = false, saw_task = false;
  for (const auto& e : obs::Tracer::global().events()) {
    if (e.trace_id != trace_id) continue;
    std::string name = e.name;
    if (name == "client/request") saw_client = true;
    if (name == "net/request") saw_net = true;
    if (name == "service/restart_task") saw_task = true;
  }
  EXPECT_TRUE(saw_client);
  EXPECT_TRUE(saw_net);
#ifndef PICOLA_OBS_DISABLED
  // The worker-side span comes from the PICOLA_OBS_SPAN macro layer,
  // which this build flag removes.
  EXPECT_TRUE(saw_task);
#else
  (void)saw_task;
#endif

  // And the Perfetto-loadable export carries it as an arg.
  std::string json = obs::Tracer::global().chrome_trace_json();
  EXPECT_NE(json.find(obs::trace_id_hex(trace_id)), std::string::npos);
  obs::Tracer::global().clear();
}

#ifndef PICOLA_FAULT_DISABLED

TEST(AdminPlane, SlowRequestLogBreaksDownWallTime) {
  ServerOptions o = admin_options();
  o.slow_request_ms = 1;  // everything is slow
  std::vector<std::string> lines;
  std::mutex lines_mu;
  o.slow_log = [&lines, &lines_mu](const std::string& line) {
    std::lock_guard<std::mutex> lock(lines_mu);
    lines.push_back(line);
  };
  // Make the job reliably slower than 1 ms.
  fault::FaultPlan plan(3);
  plan.add({"service/restart_task",
            {fault::Kind::kDelay, 0, 0, /*delay_ms=*/5},
            0, 1, 64, 1.0});
  fault::ScopedPlan scoped(std::move(plan));

  Server server(o);
  server.start();
  ClientOptions copt;
  copt.trace_requests = true;
  Client c(copt);
  ASSERT_TRUE(c.connect("127.0.0.1", server.port()));
  ASSERT_TRUE(c.call(inline_request(small_con())));
  server.stop();

  std::lock_guard<std::mutex> lock(lines_mu);
  ASSERT_FALSE(lines.empty());
  std::string err;
  auto parsed = JsonValue::parse(lines[0], &err);
  ASSERT_TRUE(parsed) << err << ": " << lines[0];
  const JsonValue* event = parsed->find("event");
  ASSERT_TRUE(event && event->is_string());
  EXPECT_EQ(event->as_string(), "slow_request");
  EXPECT_TRUE(parsed->find("wall_ms"));
  EXPECT_TRUE(parsed->find("queue_wait_ms"));
  EXPECT_TRUE(parsed->find("encode_ms"));
  EXPECT_TRUE(parsed->find("backend"));
  // The traced client's id is carried through to the log line.
  const JsonValue* tid = parsed->find("trace_id");
  ASSERT_TRUE(tid && tid->is_string());
  EXPECT_EQ(tid->as_string(), obs::trace_id_hex(c.last_trace_id()));
}

#endif  // PICOLA_FAULT_DISABLED

TEST(AdminPlane, TcpMetricsCommandKeepsItsKeysAndGainsBuild) {
  Server server(admin_options());
  server.start();
  Client c;
  ASSERT_TRUE(c.connect("127.0.0.1", server.port()));
  JsonValue req = JsonValue::make_object();
  req.set("cmd", JsonValue::make_string("metrics"));
  auto r = c.call(req);
  ASSERT_TRUE(r);
  // Compatibility surface: the pre-existing keys stay (docs/SERVICE.md),
  // the build provenance is additive.
  EXPECT_TRUE(r->find("ok"));
  EXPECT_TRUE(r->find("net"));
  EXPECT_TRUE(r->find("service"));
  EXPECT_TRUE(r->find("process"));
  ASSERT_TRUE(r->find("build"));
  EXPECT_TRUE(r->find("build")->find("git_sha"));
  // The new gauges ride in the service registry snapshot.
  const JsonValue* service = r->find("service");
  ASSERT_TRUE(service);
  const JsonValue* gauges = service->find("gauges");
  ASSERT_TRUE(gauges);
  EXPECT_TRUE(gauges->find("service/uptime_seconds"));
  EXPECT_TRUE(gauges->find("cache/entries"));
  EXPECT_TRUE(gauges->find("pool/queue_depth"));
  EXPECT_TRUE(gauges->find("pool/queue_depth_hwm"));
  server.stop();
}

TEST(AdminPlane, RejectsBadTraceIdAndOversizedRequest) {
  Server server(admin_options());
  server.start();
  Client c;
  ASSERT_TRUE(c.connect("127.0.0.1", server.port()));
  JsonValue req = inline_request(small_con());
  req.set("trace_id", JsonValue::make_string("not-hex!"));
  auto r = c.call(req);
  ASSERT_TRUE(r);
  const JsonValue* err = r->find("error");
  ASSERT_TRUE(err && err->is_string());
  EXPECT_EQ(err->as_string(), "bad_request");

  // An admin request larger than the cap is answered 400, not buffered.
  auto huge = http_get(server.admin_port(),
                       "/metrics?pad=" + std::string(9000, 'x'));
  ASSERT_TRUE(huge);
  EXPECT_EQ(huge->first, 400);
  server.stop();
}

}  // namespace
}  // namespace picola::net
