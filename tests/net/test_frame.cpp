// net/frame.h — length-prefixed framing: round-trips under arbitrary
// fragmentation, multiple frames per read, and the oversize guard firing
// on the header before any payload is buffered.

#include "net/frame.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace picola::net {
namespace {

std::vector<std::string> feed_all(FrameReader& r, const std::string& bytes,
                                  size_t chunk) {
  std::vector<std::string> out;
  for (size_t off = 0; off < bytes.size(); off += chunk) {
    size_t n = std::min(chunk, bytes.size() - off);
    if (!r.feed(bytes.data() + off, n)) break;
    while (auto p = r.next()) out.push_back(*p);
  }
  return out;
}

TEST(Frame, EncodeProducesBigEndianHeader) {
  std::string f = encode_frame("abc");
  ASSERT_EQ(f.size(), kFrameHeaderBytes + 3);
  EXPECT_EQ(f[0], '\0');
  EXPECT_EQ(f[1], '\0');
  EXPECT_EQ(f[2], '\0');
  EXPECT_EQ(f[3], '\x03');
  EXPECT_EQ(f.substr(4), "abc");
}

TEST(Frame, RoundTripUnderEveryFragmentation) {
  std::string stream = encode_frame("first") + encode_frame("") +
                       encode_frame(std::string(1000, 'x')) +
                       encode_frame("last");
  for (size_t chunk : {size_t(1), size_t(2), size_t(3), size_t(7),
                       stream.size()}) {
    FrameReader r(1 << 20);
    auto frames = feed_all(r, stream, chunk);
    ASSERT_EQ(frames.size(), 4u) << "chunk=" << chunk;
    EXPECT_EQ(frames[0], "first");
    EXPECT_EQ(frames[1], "");
    EXPECT_EQ(frames[2], std::string(1000, 'x'));
    EXPECT_EQ(frames[3], "last");
    EXPECT_FALSE(r.error());
    EXPECT_EQ(r.buffered_bytes(), 0u);
  }
}

TEST(Frame, ManyFramesInOneFeed) {
  std::string stream;
  for (int i = 0; i < 50; ++i) stream += encode_frame("p" + std::to_string(i));
  FrameReader r(1 << 20);
  ASSERT_TRUE(r.feed(stream.data(), stream.size()));
  for (int i = 0; i < 50; ++i) {
    auto p = r.next();
    ASSERT_TRUE(p);
    EXPECT_EQ(*p, "p" + std::to_string(i));
  }
  EXPECT_FALSE(r.next());
}

TEST(Frame, OversizedHeaderPoisonsBeforeBuffering) {
  FrameReader r(128);
  std::string f = encode_frame(std::string(1000, 'y'));  // legal globally
  EXPECT_FALSE(r.feed(f.data(), f.size()));
  EXPECT_TRUE(r.error());
  EXPECT_EQ(r.oversized_length(), 1000u);
  // The guard fired on the 4 header bytes; the kilobyte body was never
  // copied, and the partial-frame buffer is released on poisoning.
  EXPECT_EQ(r.buffered_bytes(), 0u);
  // Sticky: further feeds are rejected too.
  EXPECT_FALSE(r.feed("\0\0\0\1a", 5));
  EXPECT_FALSE(r.next());
}

TEST(Frame, OversizeDetectedFromPartialHeader) {
  FrameReader r(16);
  std::string f = encode_frame(std::string(100, 'z'));
  // Header dribbles in one byte at a time; the limit check still fires
  // the moment byte 4 lands.
  EXPECT_TRUE(r.feed(f.data() + 0, 1));
  EXPECT_TRUE(r.feed(f.data() + 1, 1));
  EXPECT_TRUE(r.feed(f.data() + 2, 1));
  EXPECT_FALSE(r.feed(f.data() + 3, 1));
  EXPECT_TRUE(r.error());
}

TEST(Frame, PoisonReleasesThePartialBuffer) {
  // A poisoned reader lives until its connection is torn down; it must
  // not pin the dribbled-in header bytes (or anything else) meanwhile.
  FrameReader r(16);
  std::string f = encode_frame(std::string(100, 'z'));
  ASSERT_TRUE(r.feed(f.data(), 3));
  EXPECT_EQ(r.buffered_bytes(), 3u);
  EXPECT_FALSE(r.feed(f.data() + 3, f.size() - 3));
  EXPECT_TRUE(r.error());
  EXPECT_EQ(r.buffered_bytes(), 0u);
  // Still poisoned and still empty after another feed attempt.
  EXPECT_FALSE(r.feed("abcd", 4));
  EXPECT_EQ(r.buffered_bytes(), 0u);
}

TEST(Frame, EncodeRejectsAbsurdPayload) {
  std::string huge;
  EXPECT_THROW(
      {
        std::string p(kFrameAbsoluteMax + 1, 'a');
        huge = encode_frame(p);
      },
      std::length_error);
}

TEST(Frame, ZeroLengthFrameBetweenOthers) {
  FrameReader r(64);
  std::string stream = encode_frame("") + encode_frame("a") + encode_frame("");
  ASSERT_TRUE(r.feed(stream.data(), stream.size()));
  EXPECT_EQ(*r.next(), "");
  EXPECT_EQ(*r.next(), "a");
  EXPECT_EQ(*r.next(), "");
  EXPECT_FALSE(r.next());
}

}  // namespace
}  // namespace picola::net
