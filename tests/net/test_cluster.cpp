// net/cluster.h — consistent-hash routing, failover, drain observation,
// the retry_after_ms floor across a re-route, hedged dispatch with
// exactly-one-reply dedup, peer cache-hit forwarding, and the
// drain-before-final-reply snapshot ordering (docs/CLUSTER.md).

#include "net/cluster.h"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "base/problem_io.h"
#include "check/instance_gen.h"
#include "constraints/constraint_io.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/hash_ring.h"
#include "net/json.h"
#include "net/server.h"
#include "persist/store.h"
#include "service/job.h"
#include "service/result_cache.h"

namespace picola::net {
namespace {

int64_t steady_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// An ephemeral port with nothing (yet) listening behind it.
uint16_t free_port() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  ::close(fd);
  return ntohs(addr.sin_port);
}

std::string gen_con(uint64_t seed, int min_symbols = 5, int max_symbols = 8) {
  check::GeneratorOptions g;
  g.min_symbols = min_symbols;
  g.max_symbols = max_symbols;
  g.max_constraints = 4;
  check::InstanceGenerator gen(seed, g);
  return write_constraints(gen.next().set);
}

uint64_t con_route_key(const std::string& con) {
  std::string error;
  auto problem = parse_problem_text(con, &error);
  EXPECT_TRUE(problem) << error;
  return route_key(problem->set);
}

JsonValue inline_request(const std::string& con, const std::string& id,
                         int restarts = 1) {
  JsonValue r = JsonValue::make_object();
  r.set("con", JsonValue::make_string(con));
  r.set("id", JsonValue::make_string(id));
  r.set("restarts", JsonValue::make_int(restarts));
  return r;
}

/// A minimal frame-speaking backend with a scripted reply, for the tests
/// that need timing control a real Server cannot give (the retry-floor
/// regression).  One connection at a time, served on the accept thread.
class FakeBackend {
 public:
  using Handler = std::function<JsonValue(const JsonValue&)>;

  explicit FakeBackend(Handler handler) : handler_(std::move(handler)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof addr),
              0);
    EXPECT_EQ(::listen(listen_fd_, 8), 0);
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { loop(); });
  }

  ~FakeBackend() { stop(); }

  void stop() {
    bool expected = false;
    if (!stopped_.compare_exchange_strong(expected, true)) return;
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    int c = conn_fd_.exchange(-1);
    if (c >= 0) ::shutdown(c, SHUT_RDWR);
    if (thread_.joinable()) thread_.join();
  }

  uint16_t port() const { return port_; }

 private:
  void loop() {
    for (;;) {
      int c = ::accept(listen_fd_, nullptr, nullptr);
      if (c < 0) return;
      conn_fd_.store(c);
      serve(c);
      conn_fd_.store(-1);
      ::close(c);
    }
  }

  void serve(int c) {
    FrameReader reader(1u << 20);
    char buf[4096];
    for (;;) {
      ssize_t k = ::read(c, buf, sizeof buf);
      if (k == 0) return;
      if (k < 0) {
        if (errno == EINTR) continue;
        return;
      }
      if (!reader.feed(buf, static_cast<size_t>(k))) return;
      while (auto payload = reader.next()) {
        std::string parse_error;
        auto req = JsonValue::parse(*payload, &parse_error);
        if (!req) return;
        std::string frame = encode_frame(handler_(*req).dump());
        size_t off = 0;
        while (off < frame.size()) {
          ssize_t w = ::send(c, frame.data() + off, frame.size() - off,
                             MSG_NOSIGNAL);
          if (w < 0 && errno == EINTR) continue;
          if (w <= 0) return;
          off += static_cast<size_t>(w);
        }
      }
    }
  }

  Handler handler_;
  int listen_fd_ = -1;
  std::atomic<int> conn_fd_{-1};
  std::atomic<bool> stopped_{false};
  uint16_t port_ = 0;
  std::thread thread_;
};

JsonValue echo_id(const JsonValue& req, JsonValue reply) {
  if (const JsonValue* id = req.find("id")) reply.set("id", *id);
  return reply;
}

TEST(ClusterParse, MemberSpecs) {
  auto m = parse_member("127.0.0.1:7000");
  ASSERT_TRUE(m);
  EXPECT_EQ(m->host, "127.0.0.1");
  EXPECT_EQ(m->port, 7000);
  EXPECT_EQ(m->admin_port, -1);
  EXPECT_EQ(m->name(), "127.0.0.1:7000");

  m = parse_member("node-a:7000:7100");
  ASSERT_TRUE(m);
  EXPECT_EQ(m->admin_port, 7100);

  std::string error;
  EXPECT_FALSE(parse_member("no-port", &error));
  EXPECT_FALSE(parse_member(":7000", &error));
  EXPECT_FALSE(parse_member("h:0", &error));
  EXPECT_FALSE(parse_member("h:7000:bad", &error));

  auto list = parse_member_list("a:1,b:2:3", &error);
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].name(), "a:1");
  EXPECT_EQ(list[1].admin_port, 3);
  EXPECT_TRUE(parse_member_list("a:1,junk", &error).empty());
  EXPECT_TRUE(parse_member_list("", &error).empty());
}

TEST(Cluster, RoutesToTheOwnerWhenAllBackendsAreHealthy) {
  ServerOptions so;
  so.service.num_threads = 2;
  Server s1(so), s2(so);
  s1.start();
  s2.start();

  ClusterOptions co;
  co.members = {ClusterMember{"127.0.0.1", s1.port()},
                ClusterMember{"127.0.0.1", s2.port()}};
  ClusterClient cluster(co);

  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const std::string con = gen_con(seed);
    const uint64_t key = con_route_key(con);
    std::string error;
    ClusterClient::CallInfo info;
    auto reply = cluster.call(inline_request(con, "r" + std::to_string(seed)),
                              key, &error, &info);
    ASSERT_TRUE(reply) << error;
    EXPECT_FALSE(reply->find("error")) << reply->dump();
    EXPECT_EQ(info.backend, cluster.owner_of(key));
    EXPECT_FALSE(info.rerouted);
  }
  ClusterClient::Stats st = cluster.stats();
  EXPECT_EQ(st.requests, 6u);
  EXPECT_EQ(st.reroutes, 0u);
  EXPECT_EQ(st.id_mismatches, 0u);
  s1.stop();
  s2.stop();
}

TEST(Cluster, FailsOverFromADeadBackendAndOpensItsBreaker) {
  ServerOptions so;
  so.service.num_threads = 2;
  Server live(so);
  live.start();

  ClusterOptions co;
  co.members = {ClusterMember{"127.0.0.1", free_port()},  // nothing there
                ClusterMember{"127.0.0.1", live.port()}};
  co.client.connect_timeout_ms = 200;
  co.breaker.threshold = 2;
  co.breaker.open_ms = 10'000;  // stays open for the whole test
  co.backoff_base_ms = 0;
  co.backoff_max_ms = 0;
  ClusterClient cluster(co);

  uint64_t key = 1;
  while (cluster.owner_of(key) != 0) ++key;  // owned by the dead member

  const std::string con = gen_con(42);
  for (int i = 0; i < 4; ++i) {
    std::string error;
    ClusterClient::CallInfo info;
    auto reply = cluster.call(
        inline_request(con, "f" + std::to_string(i)), key, &error, &info);
    ASSERT_TRUE(reply) << error;
    EXPECT_FALSE(reply->find("error")) << reply->dump();
    EXPECT_EQ(info.backend, 1);
    EXPECT_TRUE(info.rerouted);
  }
  ClusterClient::Stats st = cluster.stats();
  EXPECT_GE(st.reroutes, 4u);
  EXPECT_GE(st.breaker_skips, 1u);  // calls 3 and 4 skipped the corpse
  EXPECT_EQ(cluster.breaker_state(0), CircuitBreaker::State::kOpen);
  EXPECT_EQ(cluster.breaker_state(1), CircuitBreaker::State::kClosed);
  live.stop();
}

// Satellite regression: the retry_after_ms a shedding backend returns is
// a FLOOR on the delay before the next backend is attempted.  Shedding
// on A turning into an instant hammer of B is exactly the cascade the
// floor exists to stop.
TEST(Cluster, RetryAfterMsIsHonoredAcrossAFailoverReroute) {
  std::atomic<int64_t> shed_at{0};
  std::atomic<int64_t> b_asked_at{0};
  FakeBackend a([&](const JsonValue& req) {
    JsonValue r = JsonValue::make_object();
    r.set("error", JsonValue::make_string("overloaded"));
    r.set("retry_after_ms", JsonValue::make_int(80));
    shed_at.store(steady_ms());
    return echo_id(req, std::move(r));
  });
  FakeBackend b([&](const JsonValue& req) {
    b_asked_at.store(steady_ms());
    JsonValue r = JsonValue::make_object();
    r.set("ok", JsonValue::make_bool(true));
    return echo_id(req, std::move(r));
  });

  ClusterOptions co;
  co.members = {ClusterMember{"127.0.0.1", a.port()},
                ClusterMember{"127.0.0.1", b.port()}};
  co.backoff_base_ms = 0;  // isolate the floor from jittered backoff
  co.backoff_max_ms = 0;
  ClusterClient cluster(co);

  uint64_t key = 1;
  while (cluster.owner_of(key) != 0) ++key;  // A sheds first

  JsonValue req = JsonValue::make_object();
  req.set("con", JsonValue::make_string("ignored-by-fake"));
  req.set("id", JsonValue::make_string("floor"));
  std::string error;
  ClusterClient::CallInfo info;
  auto reply = cluster.call(req, key, &error, &info);
  ASSERT_TRUE(reply) << error;
  EXPECT_TRUE(reply->find("ok"));
  EXPECT_TRUE(info.rerouted);

  ASSERT_GT(shed_at.load(), 0);
  ASSERT_GT(b_asked_at.load(), 0);
  // 80ms requested; allow generous scheduling slack downward but fail
  // hard on "immediately hammered B".
  EXPECT_GE(b_asked_at.load() - shed_at.load(), 60)
      << "re-route ignored the shed backend's retry_after_ms";
  ClusterClient::Stats st = cluster.stats();
  EXPECT_GE(st.overloaded, 1u);
  EXPECT_GE(st.retry_floor_waits, 1u);
  a.stop();
  b.stop();
}

TEST(Cluster, HedgedDispatchReturnsOneReplyAndSuppressesTheLoser) {
  // Deterministic timing: the owner answers correctly but slowly, the
  // hedge target instantly.  The hedge leg must win, the caller must see
  // exactly one reply, and the slow loser must be counted and dropped.
  FakeBackend slow([&](const JsonValue& req) {
    sleep_ms(150);
    JsonValue r = JsonValue::make_object();
    r.set("ok", JsonValue::make_bool(true));
    r.set("who", JsonValue::make_string("slow"));
    return echo_id(req, std::move(r));
  });
  FakeBackend fast([&](const JsonValue& req) {
    JsonValue r = JsonValue::make_object();
    r.set("ok", JsonValue::make_bool(true));
    r.set("who", JsonValue::make_string("fast"));
    return echo_id(req, std::move(r));
  });

  ClusterOptions co;
  co.members = {ClusterMember{"127.0.0.1", slow.port()},
                ClusterMember{"127.0.0.1", fast.port()}};
  co.hedge_ms = 20;
  ClusterClient cluster(co);

  uint64_t key = 1;
  while (cluster.owner_of(key) != 0) ++key;  // the slow backend owns it

  JsonValue req = JsonValue::make_object();
  req.set("con", JsonValue::make_string("ignored-by-fake"));
  req.set("id", JsonValue::make_string("hedge-1"));
  std::string error;
  ClusterClient::CallInfo info;
  auto reply = cluster.call(req, key, &error, &info);
  ASSERT_TRUE(reply) << error;
  ASSERT_TRUE(reply->find("id"));
  EXPECT_EQ(reply->find("id")->as_string(), "hedge-1");
  EXPECT_EQ(reply->find("who")->as_string(), "fast");
  EXPECT_TRUE(info.hedged);
  EXPECT_EQ(info.backend, 1);

  // The losing leg replies ~130ms later; exactly-one-reply means it is
  // counted and dropped, never surfaced.
  bool suppressed = false;
  for (int i = 0; i < 250 && !suppressed; ++i) {
    suppressed = cluster.stats().duplicates_suppressed >= 1;
    sleep_ms(10);
  }
  ClusterClient::Stats st = cluster.stats();
  EXPECT_GE(st.hedges, 1u);
  EXPECT_GE(st.hedge_wins, 1u);
  EXPECT_TRUE(suppressed) << "losing hedge leg never accounted";
  EXPECT_EQ(st.id_mismatches, 0u);
  EXPECT_EQ(st.requests, 1u);
  slow.stop();
  fast.stop();
}

TEST(Cluster, ObservesDrainReroutesAndReadmitsAfterRestart) {
  const uint16_t port_a = free_port();
  const int admin_a = free_port();
  ServerOptions oa;
  oa.service.num_threads = 2;
  oa.port = port_a;
  oa.admin_port = admin_a;
  ServerOptions ob;
  ob.service.num_threads = 2;

  auto a = std::make_unique<Server>(oa);
  Server b(ob);
  a->start();
  b.start();

  ClusterOptions co;
  co.members = {
      ClusterMember{"127.0.0.1", port_a, admin_a},
      ClusterMember{"127.0.0.1", b.port()}};
  co.health_recheck_ms = 30;
  co.backoff_base_ms = 0;
  co.backoff_max_ms = 0;
  ClusterClient cluster(co);

  uint64_t key = 1;
  while (cluster.owner_of(key) != 0) ++key;  // owned by A

  // Warm the lane to A while it is healthy: drain is observed through
  // replies on connections that already exist.
  JsonValue ping = JsonValue::make_object();
  ping.set("cmd", JsonValue::make_string("ping"));
  std::string error;
  ASSERT_TRUE(cluster.call(ping, key, &error)) << error;

  // Park a slow job on A, then start its graceful drain.
  Client occupier;
  ASSERT_TRUE(occupier.connect("127.0.0.1", port_a));
  ASSERT_TRUE(
      occupier.send(inline_request(gen_con(3, 30, 34), "slow", 16).dump()));
  for (int i = 0; i < 500 && a->stats().requests_admitted < 1; ++i)
    sleep_ms(2);
  ASSERT_GE(a->stats().requests_admitted, 1);
  a->request_shutdown();
  // Drain closes the main listener; poll until a fresh connect is
  // refused so the draining state is guaranteed visible.
  bool drained = false;
  for (int i = 0; i < 500 && !drained; ++i) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_a);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    drained =
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0;
    ::close(fd);
    if (!drained) sleep_ms(2);
  }
  ASSERT_TRUE(drained);

  // A key owned by A now bounces off its shutting_down reply and is
  // answered by B.
  const std::string con = gen_con(4);
  ClusterClient::CallInfo info;
  auto reply = cluster.call(inline_request(con, "drain-1"), key, &error, &info);
  ASSERT_TRUE(reply) << error;
  EXPECT_FALSE(reply->find("error")) << reply->dump();
  EXPECT_EQ(info.backend, 1);
  EXPECT_TRUE(info.rerouted);
  EXPECT_TRUE(cluster.draining(0));
  EXPECT_GE(cluster.stats().drains_observed, 1u);

  // Let A finish its parked job and exit, then roll it back in on the
  // SAME ports — the restarted node must re-enter rotation via /healthz.
  EXPECT_TRUE(occupier.recv());
  a->stop();
  a = std::make_unique<Server>(oa);
  a->start();
  sleep_ms(50);  // past health_recheck_ms

  // First call re-probes A (200 -> rejoin) but may still trip over the
  // stale pre-restart connection in the lane; the one after must land
  // on A proper.
  ASSERT_TRUE(cluster.call(inline_request(con, "rejoin-1"), key, &error))
      << error;
  EXPECT_GE(cluster.stats().rejoins, 1u);
  EXPECT_FALSE(cluster.draining(0));
  reply = cluster.call(inline_request(con, "rejoin-2"), key, &error, &info);
  ASSERT_TRUE(reply) << error;
  EXPECT_FALSE(reply->find("error")) << reply->dump();
  EXPECT_EQ(info.backend, 0) << "restarted owner never re-entered rotation";

  a->stop();
  b.stop();
}

TEST(Cluster, PeerForwardingAdoptsTheOwnersCachedResult) {
  const uint16_t port_a = free_port();
  const uint16_t port_b = free_port();
  const std::vector<ClusterMember> peers = {
      ClusterMember{"127.0.0.1", port_a}, ClusterMember{"127.0.0.1", port_b}};

  ServerOptions oa;
  oa.service.num_threads = 2;
  oa.port = port_a;
  oa.peers = peers;
  oa.self = peers[0].name();
  ServerOptions ob = oa;
  ob.port = port_b;
  ob.self = peers[1].name();

  Server a(oa), b(ob);
  a.start();
  b.start();

  // A problem whose ring owner is A — found by scanning generator seeds
  // with the same ring the servers built.
  HashRing ring({peers[0].name(), peers[1].name()});
  std::string con;
  for (uint64_t seed = 1;; ++seed) {
    con = gen_con(seed);
    if (ring.owner(con_route_key(con)) == 0) break;
  }

  Client to_a, to_b;
  ASSERT_TRUE(to_a.connect("127.0.0.1", port_a));
  ASSERT_TRUE(to_b.connect("127.0.0.1", port_b));
  std::string error;

  // Cold miss through the NON-owner: B detours via the probe thread,
  // peeks A (miss), and encodes locally.
  auto cold = to_b.call(inline_request(con, "cold"), &error);
  ASSERT_TRUE(cold) << error;
  ASSERT_FALSE(cold->find("error")) << cold->dump();
  EXPECT_EQ(cold->find("cached")->as_int(), 0);
  EXPECT_EQ(b.metrics().counter_value("cluster/peek_attempts"), 1u);
  EXPECT_EQ(b.metrics().counter_value("cluster/peek_misses"), 1u);
  EXPECT_EQ(a.metrics().counter_value("cluster/peeks_served"), 1u);

  // Warm the owner with a DIFFERENT problem (also A-owned), then ask the
  // non-owner: the peek hits, the record is adopted, and the reply is a
  // cache hit bit-identical to the owner's.
  std::string con2;
  for (uint64_t seed = 1000;; ++seed) {
    con2 = gen_con(seed);
    if (con2 != con && ring.owner(con_route_key(con2)) == 0) break;
  }
  auto owner_reply = to_a.call(inline_request(con2, "warm"), &error);
  ASSERT_TRUE(owner_reply) << error;
  ASSERT_FALSE(owner_reply->find("error")) << owner_reply->dump();

  auto forwarded = to_b.call(inline_request(con2, "fwd"), &error);
  ASSERT_TRUE(forwarded) << error;
  ASSERT_FALSE(forwarded->find("error")) << forwarded->dump();
  EXPECT_EQ(forwarded->find("cached")->as_int(), 1)
      << "the peer hit was not adopted";
  EXPECT_EQ(forwarded->find("enc")->as_string(),
            owner_reply->find("enc")->as_string())
      << "forwarded result is not bit-identical to the owner's";
  EXPECT_EQ(forwarded->find("cubes")->as_int(),
            owner_reply->find("cubes")->as_int());
  EXPECT_EQ(b.metrics().counter_value("cluster/forwarded_hits"), 1u);

  a.stop();
  b.stop();
}

// Satellite regression: the drain snapshot is taken BEFORE the final
// admitted request is answered, so a client that saw the last reply can
// restart the node and find everything it was told in the warm cache.
TEST(Cluster, DrainSnapshotsThePersistCacheBeforeTheFinalReply) {
  const std::string dir = ::testing::TempDir() + "picola_drain_snap_" +
                          std::to_string(::getpid());
  ServerOptions so;
  so.service.num_threads = 2;
  so.service.cache_dir = dir;
  so.service.snapshot_interval_s = -1;  // ONLY drain/shutdown snapshots

  Server server(so);
  server.start();

  Client c;
  ASSERT_TRUE(c.connect("127.0.0.1", server.port()));
  ASSERT_TRUE(c.send(inline_request(gen_con(9, 20, 24), "final", 8).dump()));
  for (int i = 0; i < 500 && server.stats().requests_admitted < 1; ++i)
    sleep_ms(2);
  ASSERT_GE(server.stats().requests_admitted, 1);
  server.request_shutdown();

  auto payload = c.recv();
  ASSERT_TRUE(payload);
  std::string parse_error;
  auto reply = JsonValue::parse(*payload, &parse_error);
  ASSERT_TRUE(reply) << parse_error;
  ASSERT_FALSE(reply->find("error")) << reply->dump();

  // The reply is on the wire, so the snapshot must already be durable —
  // load the cache dir NOW, before the server object is even stopped.
  EXPECT_EQ(server.service().metrics().counter_value("persist/drain_snapshots"),
            1u);
  persist::StoreOptions store_opt;
  store_opt.dir = dir;
  store_opt.snapshot_interval_s = -1;
  ResultCache verify_cache(16, 1);
  persist::CacheStore verify_store(store_opt);
  persist::LoadStats ls = verify_store.load(&verify_cache);
  EXPECT_GE(ls.snapshot_records, 1u)
      << "final reply sent before the drain snapshot was durable";
  EXPECT_EQ(verify_cache.size(), 1u);

  server.stop();
}

}  // namespace
}  // namespace picola::net
