// net/client.h resilience layer: timeouts, reconnects, seeded full-jitter
// backoff, retry_after_ms honoring, the circuit breaker — and the server
// surviving injected EINTR/short-I/O storms (the regression tests for the
// raw-syscall audit: every net/ call site now loops on EINTR and writes
// with MSG_NOSIGNAL).

#include "net/client.h"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <string>
#include <thread>

#include "check/instance_gen.h"
#include "constraints/constraint_io.h"
#include "fault/fault.h"
#include "net/json.h"
#include "net/server.h"

namespace picola::net {
namespace {

JsonValue ping_request() {
  JsonValue r = JsonValue::make_object();
  r.set("cmd", JsonValue::make_string("ping"));
  return r;
}

JsonValue inline_request(const std::string& con, int restarts = 1) {
  JsonValue r = JsonValue::make_object();
  r.set("con", JsonValue::make_string(con));
  r.set("restarts", JsonValue::make_int(restarts));
  return r;
}

const std::string& small_con() {
  static const std::string text = [] {
    check::GeneratorOptions g;
    g.min_symbols = 5;
    g.max_symbols = 8;
    g.max_constraints = 4;
    check::InstanceGenerator gen(3, g);
    return write_constraints(gen.next().set);
  }();
  return text;
}

const std::string& slow_con() {
  static const std::string text = [] {
    check::GeneratorOptions g;
    g.min_symbols = 40;
    g.max_symbols = 44;
    g.max_constraints = 10;
    check::InstanceGenerator gen(7, g);
    return write_constraints(gen.next().set);
  }();
  return text;
}

/// An ephemeral port with nothing listening behind it.
uint16_t dead_port() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  ::close(fd);
  return ntohs(addr.sin_port);
}

TEST(ClientRetry, BackoffIsSeededFullJitter) {
  ClientOptions o;
  o.backoff_base_ms = 8;
  o.backoff_max_ms = 64;
  o.jitter_seed = 123;
  Client a(o), b(o);
  for (int i = 0; i < 8; ++i) {
    int d = a.backoff_delay_ms(i);
    EXPECT_GE(d, 0);
    EXPECT_LE(d, 64);  // capped even when 8 << i overflows the cap
    EXPECT_EQ(d, b.backoff_delay_ms(i));  // same seed, same sequence
  }
  o.jitter_seed = 124;
  Client c(o);
  bool any_diff = false;
  Client a2(ClientOptions{.backoff_base_ms = 8, .backoff_max_ms = 64,
                          .jitter_seed = 123});
  for (int i = 0; i < 8; ++i)
    any_diff |= (a2.backoff_delay_ms(i) != c.backoff_delay_ms(i));
  EXPECT_TRUE(any_diff);
}

TEST(ClientRetry, IoTimeoutOnSilentPeer) {
  // A listener that never accepts: the connection parks in the backlog,
  // the request is swallowed, and recv() must give up on time.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  ASSERT_EQ(::listen(fd, 8), 0);
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);

  ClientOptions o;
  o.io_timeout_ms = 100;
  Client c(o);
  ASSERT_TRUE(c.connect("127.0.0.1", ntohs(addr.sin_port)));
  std::string error;
  auto reply = c.call(ping_request(), &error);
  EXPECT_FALSE(reply);
  EXPECT_NE(error.find("timeout"), std::string::npos) << error;
  EXPECT_FALSE(c.connected());  // a timed-out connection is unusable
  ::close(fd);
}

TEST(ClientRetry, CircuitBreakerOpensAndFailsFast) {
  ClientOptions o;
  o.connect_timeout_ms = 200;
  o.max_retries = 10;
  o.backoff_base_ms = 1;
  o.backoff_max_ms = 2;
  o.breaker_threshold = 3;
  o.breaker_open_ms = 40;
  Client c(o);
  std::string error;
  ASSERT_FALSE(c.connect("127.0.0.1", dead_port(), &error));
  auto reply = c.call_with_retry(ping_request(), &error);
  EXPECT_FALSE(reply);
  EXPECT_GE(c.stats().breaker_opens, 1u);  // threshold reached mid-budget
  EXPECT_GE(c.stats().breaker_waits, 1u);  // later attempts failed fast
}

TEST(ClientRetry, ReconnectsAndSucceedsUnderInjectedTransportFaults) {
  Server server([] {
    ServerOptions o;
    o.service.num_threads = 2;
    return o;
  }());
  server.start();

  fault::FaultPlan plan(5);
  // The very first reads in the process are the server reading this
  // request, so the resets are guaranteed to kill the client's first two
  // attempts; the reconnects then eat the interrupted connects (the
  // client's own first connect was call 0).
  plan.add({"net/read", {fault::Kind::kErrno, ECONNRESET, 0, 0}, 0, 1, 2});
  plan.add({"net/connect", {fault::Kind::kErrno, EINTR, 0, 0}, 1, 1, 2});
  fault::ScopedPlan scoped(std::move(plan));

  ClientOptions o;
  o.max_retries = 20;
  o.backoff_base_ms = 1;
  o.backoff_max_ms = 4;
  Client c(o);
  ASSERT_TRUE(c.connect("127.0.0.1", server.port()));
  std::string error;
  auto reply = c.call_with_retry(inline_request(small_con()), &error);
  ASSERT_TRUE(reply) << error;
  EXPECT_FALSE(reply->find("error"));
#ifndef PICOLA_FAULT_DISABLED
  EXPECT_GE(c.stats().retries, 1u);
#endif
  server.stop();
}

TEST(ClientRetry, HonorsRetryAfterMsWhenShed) {
  ServerOptions so;
  so.service.num_threads = 2;
  so.max_inflight = 1;
  so.retry_after_ms = 5;
  Server server(so);
  server.start();

  // Occupy the only slot with a slow job on its own connection, and wait
  // until the server has actually read the frame (admission is
  // synchronous with the read) before racing the second request in.
  Client occupier;
  ASSERT_TRUE(occupier.connect("127.0.0.1", server.port()));
  ASSERT_TRUE(occupier.send(inline_request(slow_con(), 64).dump()));
  for (int i = 0; i < 500 && server.stats().frames_in < 1; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_GE(server.stats().frames_in, 1);

  ClientOptions o;
  o.max_retries = 2000;
  o.backoff_base_ms = 1;
  o.backoff_max_ms = 8;
  Client c(o);
  ASSERT_TRUE(c.connect("127.0.0.1", server.port()));
  std::string error;
  auto reply = c.call_with_retry(inline_request(small_con()), &error);
  ASSERT_TRUE(reply) << error;
  EXPECT_FALSE(reply->find("error"));  // eventually admitted and answered
  EXPECT_GE(c.stats().overloaded, 1u);  // was shed at least once first
  EXPECT_TRUE(occupier.recv());         // the slow job also completed
  server.stop();
}

TEST(ClientRetry, ServerSurvivesEintrAndShortIoStorm) {
  // Regression for the raw-syscall audit: interrupted waits, interrupted
  // accepts, resets and byte-at-a-time reads must not wedge the loop or
  // kill the process, and admitted requests still get answers.
  Server server([] {
    ServerOptions o;
    o.service.num_threads = 2;
    return o;
  }());
  server.start();

  fault::FaultPlan plan(11);
  plan.add({"net/epoll_wait", {fault::Kind::kErrno, EINTR, 0, 0}, 0, 2, 6});
  plan.add({"net/accept", {fault::Kind::kErrno, EINTR, 0, 0}, 0, 1, 1});
  plan.add({"net/accept", {fault::Kind::kErrno, ECONNABORTED, 0, 0}, 1, 1, 1});
  plan.add({"net/read", {fault::Kind::kShortIo, 0, 1, 0}, 0, 1, 64});
  plan.add({"net/close", {fault::Kind::kErrno, EINTR, 0, 0}, 0, 1, 4});
  fault::ScopedPlan scoped(std::move(plan));

  ClientOptions o;
  o.max_retries = 20;
  o.backoff_base_ms = 1;
  o.backoff_max_ms = 4;
  Client c(o);
  bool up = false;
  for (int i = 0; i < 10 && !up; ++i)
    up = c.connect("127.0.0.1", server.port());
  ASSERT_TRUE(up);
  std::string error;
  for (int i = 0; i < 3; ++i) {
    auto reply = c.call_with_retry(inline_request(small_con()), &error);
    ASSERT_TRUE(reply) << error;
    EXPECT_FALSE(reply->find("error"));
  }
  server.stop();
}

}  // namespace
}  // namespace picola::net
