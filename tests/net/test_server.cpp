// net/server.h — loopback integration tests of the TCP encoding server:
// protocol correctness and bit-identity with the stdin serve path, plus
// the robustness behaviours the server exists for — load shedding,
// deadlines with job cancellation, idle timeouts, oversized frames,
// write ordering under pipelining, and graceful drain.

#include "net/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/instance_gen.h"
#include "cli/cli.h"
#include "constraints/constraint_io.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/json.h"

namespace picola::net {
namespace {

std::string example(const std::string& name) {
  return std::string(PICOLA_EXAMPLES_DIR) + "/" + name;
}

ServerOptions base_options() {
  ServerOptions o;
  o.service.num_threads = 2;
  o.service.cache_capacity = 64;
  return o;
}

/// A deterministically generated instance big enough that one job with
/// many restarts keeps a worker busy for a while (deadline/shed tests).
const std::string& slow_con() {
  static const std::string text = [] {
    check::GeneratorOptions g;
    g.min_symbols = 40;
    g.max_symbols = 44;
    g.max_constraints = 10;
    check::InstanceGenerator gen(7, g);
    return write_constraints(gen.next().set);
  }();
  return text;
}

JsonValue encode_request(const std::string& path) {
  JsonValue r = JsonValue::make_object();
  r.set("path", JsonValue::make_string(path));
  return r;
}

JsonValue inline_request(const std::string& con) {
  JsonValue r = JsonValue::make_object();
  r.set("con", JsonValue::make_string(con));
  return r;
}

std::string str_field(const JsonValue& v, const char* key) {
  const JsonValue* f = v.find(key);
  return f && f->is_string() ? f->as_string() : "";
}

int64_t int_field(const JsonValue& v, const char* key) {
  const JsonValue* f = v.find(key);
  return f && f->is_number() ? f->as_int() : -1;
}

/// Spin until `pred` holds (5 s cap) — for counters the loop thread
/// updates asynchronously.
template <typename Pred>
bool eventually(Pred pred) {
  for (int i = 0; i < 500; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

TEST(NetServer, PingStatsMetricsRoundTrip) {
  Server server(base_options());
  server.start();
  Client c;
  ASSERT_TRUE(c.connect("127.0.0.1", server.port()));

  JsonValue ping = JsonValue::make_object();
  ping.set("cmd", JsonValue::make_string("ping"));
  ping.set("id", JsonValue::make_int(7));
  auto r = c.call(ping);
  ASSERT_TRUE(r);
  EXPECT_TRUE(r->find("ok"));
  EXPECT_EQ(int_field(*r, "id"), 7);  // id echoed verbatim

  JsonValue stats = JsonValue::make_object();
  stats.set("cmd", JsonValue::make_string("stats"));
  r = c.call(stats);
  ASSERT_TRUE(r);
  ASSERT_TRUE(r->find("net"));
  EXPECT_EQ(int_field(*r->find("net"), "connections_accepted"), 1);
  ASSERT_TRUE(r->find("service"));

  JsonValue metrics = JsonValue::make_object();
  metrics.set("cmd", JsonValue::make_string("metrics"));
  r = c.call(metrics);
  ASSERT_TRUE(r);
  // The net/* registry is wired through: counters appear in the report.
  const JsonValue* net = r->find("net");
  ASSERT_TRUE(net && net->find("counters"));
  EXPECT_TRUE(net->find("counters")->find("net/frames_in"));
  EXPECT_TRUE(net->find("histograms"));
  server.stop();
}

TEST(NetServer, EncodeMatchesStdinServeBitForBit) {
  Server server(base_options());
  server.start();

  // The same requests through the legacy stdin front-end...
  std::string input = example("overlap.con") + "\n" +
                      example("paper_fig1.con") + "\n";
  std::istringstream stdin_in(input);
  std::ostringstream stdin_out, stdin_err;
  ASSERT_EQ(cli::run({"serve"}, stdin_in, stdin_out, stdin_err), 0);

  // ...and through the TCP client front-end, whose ok-lines are
  // byte-compatible by contract.
  std::istringstream tcp_in(input);
  std::ostringstream tcp_out, tcp_err;
  ASSERT_EQ(cli::run({"client", "127.0.0.1:" + std::to_string(server.port())},
                     tcp_in, tcp_out, tcp_err),
            0)
      << tcp_err.str();

  auto ok_lines = [](const std::string& text) {
    std::vector<std::string> lines;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line))
      if (line.rfind("ok ", 0) == 0) {
        // Drop the trailing cached= field: the two front-ends may hit
        // their caches differently; the encoding itself must not differ.
        lines.push_back(line.substr(0, line.rfind(" cached=")));
      }
    return lines;
  };
  auto a = ok_lines(stdin_out.str());
  auto b = ok_lines(tcp_out.str());
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a, b);
  server.stop();
}

TEST(NetServer, ConcurrentClientsGetIdenticalEncodings) {
  Server server(base_options());
  server.start();
  constexpr int kClients = 4;
  std::vector<std::string> encs(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client c;
      ASSERT_TRUE(c.connect("127.0.0.1", server.port()));
      auto r = c.call(encode_request(example("overlap.con")));
      ASSERT_TRUE(r) << "client " << i;
      encs[static_cast<size_t>(i)] = str_field(*r, "enc");
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 1; i < kClients; ++i) EXPECT_EQ(encs[size_t(i)], encs[0]);
  EXPECT_EQ(encs[0].size(), 16u);  // a real hex64 content hash
  server.stop();
}

TEST(NetServer, InlineConEquivalentToPathRequest) {
  Server server(base_options());
  server.start();
  Client c;
  ASSERT_TRUE(c.connect("127.0.0.1", server.port()));
  auto by_path = c.call(encode_request(example("overlap.con")));
  ASSERT_TRUE(by_path) << "path request failed";
  std::ifstream in(example("overlap.con"));
  std::stringstream ss;
  ss << in.rdbuf();
  auto by_con = c.call(inline_request(ss.str()));
  ASSERT_TRUE(by_con);
  EXPECT_EQ(str_field(*by_path, "enc"), str_field(*by_con, "enc"));
  EXPECT_EQ(int_field(*by_path, "cubes"), int_field(*by_con, "cubes"));
  server.stop();
}

TEST(NetServer, DeadlineExceededAnswersEarlyAndCancelsJob) {
  ServerOptions o = base_options();
  o.service.num_threads = 1;
  Server server(o);
  server.start();
  Client c;
  ASSERT_TRUE(c.connect("127.0.0.1", server.port()));

  JsonValue req = inline_request(slow_con());
  req.set("restarts", JsonValue::make_int(256));
  req.set("deadline_ms", JsonValue::make_int(1));
  req.set("id", JsonValue::make_string("slow"));
  auto r = c.call(req);
  ASSERT_TRUE(r);
  EXPECT_EQ(str_field(*r, "error"), "deadline_exceeded");
  EXPECT_EQ(str_field(*r, "id"), "slow");
  EXPECT_EQ(int_field(*r, "deadline_ms"), 1);

  // The answered-late job must actually unwind: its CancelToken fired and
  // the admission slot frees without the client doing anything else.
  EXPECT_TRUE(eventually([&] { return server.stats().inflight == 0; }));
  NetStats s = server.stats();
  EXPECT_EQ(s.deadline_misses, 1);
  EXPECT_EQ(s.cancelled_jobs, 1);
  server.stop();
}

TEST(NetServer, BackendFieldSelectsBackendAndIsEchoed) {
  Server server(base_options());
  server.start();
  Client c;
  ASSERT_TRUE(c.connect("127.0.0.1", server.port()));

  // Default: the picola backend answers and is named in the reply.
  auto r = c.call(encode_request(example("overlap.con")));
  ASSERT_TRUE(r);
  EXPECT_EQ(str_field(*r, "backend"), "picola");

  // Explicit backend: the winning backend comes back.
  JsonValue req = encode_request(example("overlap.con"));
  req.set("backend", JsonValue::make_string("anneal"));
  r = c.call(req);
  ASSERT_TRUE(r);
  EXPECT_FALSE(r->find("error")) << r->dump();
  EXPECT_EQ(str_field(*r, "backend"), "anneal");

  // An unknown backend is a typed bad_request, not a hang or a crash.
  req.set("backend", JsonValue::make_string("cplex"));
  r = c.call(req);
  ASSERT_TRUE(r);
  EXPECT_EQ(str_field(*r, "error"), "bad_request");
  server.stop();
}

TEST(NetServer, DeadlineCancelsLongSatRun) {
  // The satellite requirement: a TCP deadline must unwind a long SAT
  // solve through the solver's CancelToken hooks, freeing the admission
  // slot — not leave the pool burning on an abandoned search.
  ServerOptions o = base_options();
  o.service.num_threads = 1;
  Server server(o);
  server.start();
  Client c;
  ASSERT_TRUE(c.connect("127.0.0.1", server.port()));

  JsonValue req = inline_request(slow_con());
  req.set("backend", JsonValue::make_string("sat"));
  req.set("deadline_ms", JsonValue::make_int(1));
  req.set("id", JsonValue::make_string("slow-sat"));
  auto r = c.call(req);
  ASSERT_TRUE(r);
  EXPECT_EQ(str_field(*r, "error"), "deadline_exceeded");
  EXPECT_EQ(str_field(*r, "id"), "slow-sat");

  EXPECT_TRUE(eventually([&] { return server.stats().inflight == 0; }));
  NetStats s = server.stats();
  EXPECT_EQ(s.deadline_misses, 1);
  EXPECT_EQ(s.cancelled_jobs, 1);
  server.stop();
}

TEST(NetServer, ShedsAboveMaxInflightWithRetryAfter) {
  ServerOptions o = base_options();
  o.service.num_threads = 1;
  o.max_inflight = 1;
  o.retry_after_ms = 123;
  Server server(o);
  server.start();
  Client c;
  ASSERT_TRUE(c.connect("127.0.0.1", server.port()));

  // Pipeline two requests in back-to-back frames: #1 admits and occupies
  // the only slot, #2 must shed — deterministically, because the loop
  // handles both frames before it can possibly retire #1.
  JsonValue slow = inline_request(slow_con());
  slow.set("restarts", JsonValue::make_int(64));
  slow.set("id", JsonValue::make_string("first"));
  JsonValue second = encode_request(example("overlap.con"));
  second.set("id", JsonValue::make_string("second"));
  ASSERT_TRUE(c.send(slow.dump()));
  ASSERT_TRUE(c.send(second.dump()));

  // The shed answer overtakes the slow job's answer.
  auto shed = c.recv();
  ASSERT_TRUE(shed);
  auto shed_json = JsonValue::parse(*shed);
  ASSERT_TRUE(shed_json);
  EXPECT_EQ(str_field(*shed_json, "error"), "overloaded");
  EXPECT_EQ(str_field(*shed_json, "id"), "second");
  EXPECT_EQ(int_field(*shed_json, "retry_after_ms"), 123);

  auto ok = c.recv();
  ASSERT_TRUE(ok);
  auto ok_json = JsonValue::parse(*ok);
  ASSERT_TRUE(ok_json);
  EXPECT_EQ(str_field(*ok_json, "id"), "first");
  EXPECT_TRUE(ok_json->find("ok"));

  EXPECT_EQ(server.stats().sheds, 1);
  // After the slot freed, the same request is admitted.
  auto retry = c.call(second);
  ASSERT_TRUE(retry);
  EXPECT_TRUE(retry->find("ok"));
  server.stop();
}

TEST(NetServer, IdleConnectionsAreClosed) {
  ServerOptions o = base_options();
  o.idle_timeout_ms = 50;
  Server server(o);
  server.start();
  Client c;
  ASSERT_TRUE(c.connect("127.0.0.1", server.port()));
  JsonValue ping = JsonValue::make_object();
  ping.set("cmd", JsonValue::make_string("ping"));
  ASSERT_TRUE(c.call(ping));
  // Then we go quiet; the server hangs up on us.
  auto r = c.recv();
  EXPECT_FALSE(r);
  EXPECT_TRUE(eventually([&] { return server.stats().idle_closed == 1; }));
  server.stop();
}

TEST(NetServer, OversizedFrameRejectedThenClosed) {
  ServerOptions o = base_options();
  o.max_frame_bytes = 256;
  Server server(o);
  server.start();
  Client c;
  ASSERT_TRUE(c.connect("127.0.0.1", server.port()));
  ASSERT_TRUE(c.send(std::string(1000, '{')));  // declared length 1000 > 256
  auto r = c.recv();
  ASSERT_TRUE(r);
  auto err = JsonValue::parse(*r);
  ASSERT_TRUE(err);
  EXPECT_EQ(str_field(*err, "error"), "frame_too_large");
  EXPECT_EQ(int_field(*err, "max_frame_bytes"), 256);
  EXPECT_EQ(int_field(*err, "declared_bytes"), 1000);
  // Framing is lost, so the server closes after flushing the error.
  EXPECT_FALSE(c.recv());
  EXPECT_EQ(server.stats().frame_errors, 1);
  server.stop();
}

TEST(NetServer, MalformedRequestsGetTypedErrors) {
  ServerOptions o = base_options();
  o.allow_paths = false;
  Server server(o);
  server.start();
  Client c;
  ASSERT_TRUE(c.connect("127.0.0.1", server.port()));

  ASSERT_TRUE(c.send("this is not json"));
  auto r = c.recv();
  ASSERT_TRUE(r);
  EXPECT_EQ(str_field(*JsonValue::parse(*r), "error"), "bad_request");

  JsonValue unknown = JsonValue::make_object();
  unknown.set("cmd", JsonValue::make_string("frobnicate"));
  auto u = c.call(unknown);
  ASSERT_TRUE(u);
  EXPECT_EQ(str_field(*u, "error"), "bad_request");

  auto bad_con = c.call(inline_request("not a constraint file"));
  ASSERT_TRUE(bad_con);
  EXPECT_EQ(str_field(*bad_con, "error"), "bad_problem");

  // Server-side file reads are disabled on this instance.
  auto by_path = c.call(encode_request(example("overlap.con")));
  ASSERT_TRUE(by_path);
  EXPECT_EQ(str_field(*by_path, "error"), "paths_disabled");

  JsonValue bad_restarts = inline_request(slow_con());
  bad_restarts.set("restarts", JsonValue::make_int(100000));
  auto br = c.call(bad_restarts);
  ASSERT_TRUE(br);
  EXPECT_EQ(str_field(*br, "error"), "bad_request");
  server.stop();
}

TEST(NetServer, GracefulDrainAnswersInflightThenExits) {
  ServerOptions o = base_options();
  o.service.num_threads = 1;
  Server server(o);
  server.start();
  Client c;
  ASSERT_TRUE(c.connect("127.0.0.1", server.port()));
  JsonValue slow = inline_request(slow_con());
  slow.set("restarts", JsonValue::make_int(32));
  ASSERT_TRUE(c.send(slow.dump()));
  // Drain only promises to answer *admitted* work, so make sure the
  // request frame was read and admitted before pulling the trigger.
  ASSERT_TRUE(eventually([&] { return server.stats().requests_admitted == 1; }));

  // SIGTERM path: request_shutdown() is what the signal handler calls.
  server.request_shutdown();
  // The already-admitted job is still answered...
  auto r = c.recv();
  ASSERT_TRUE(r);
  EXPECT_TRUE(JsonValue::parse(*r)->find("ok"));
  // ...then the connection closes and the loop thread exits.
  EXPECT_FALSE(c.recv());
  server.stop();  // joins; hangs here = drain failed
  // Once drained, the listener is gone.
  Client late;
  EXPECT_FALSE(late.connect("127.0.0.1", server.port()));
}

TEST(NetServer, ShutdownCommandDrains) {
  Server server(base_options());
  server.start();
  Client c;
  ASSERT_TRUE(c.connect("127.0.0.1", server.port()));
  JsonValue req = JsonValue::make_object();
  req.set("cmd", JsonValue::make_string("shutdown"));
  auto r = c.call(req);
  ASSERT_TRUE(r);
  EXPECT_TRUE(r->find("draining"));
  // New encode requests on a draining server are refused, not queued.
  // (The connection may instead already be closed by the drain — both are
  // acceptable shutdown narratives for an in-flight client.)
  if (c.send(encode_request(example("overlap.con")).dump())) {
    if (auto resp = c.recv()) {
      EXPECT_EQ(str_field(*JsonValue::parse(*resp), "error"),
                "shutting_down");
    }
  }
  server.stop();
}

TEST(NetServer, DisconnectCancelsOutstandingJobs) {
  ServerOptions o = base_options();
  o.service.num_threads = 1;
  Server server(o);
  server.start();
  {
    Client c;
    ASSERT_TRUE(c.connect("127.0.0.1", server.port()));
    JsonValue slow = inline_request(slow_con());
    slow.set("restarts", JsonValue::make_int(256));
    ASSERT_TRUE(c.send(slow.dump()));
    // Walk away without reading the answer.
  }
  EXPECT_TRUE(eventually([&] {
    NetStats s = server.stats();
    return s.inflight == 0 && s.cancelled_jobs == 1;
  }));
  server.stop();
}

TEST(NetServer, PollBackendServesRequests) {
  ServerOptions o = base_options();
  o.use_poll = true;
  Server server(o);
  server.start();
  Client c;
  ASSERT_TRUE(c.connect("127.0.0.1", server.port()));
  auto r = c.call(encode_request(example("overlap.con")));
  ASSERT_TRUE(r);
  EXPECT_TRUE(r->find("ok"));
  EXPECT_EQ(str_field(*r, "enc").size(), 16u);
  server.stop();
}

}  // namespace
}  // namespace picola::net
