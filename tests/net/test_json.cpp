// net/json.h — the wire-protocol JSON model: parsing of untrusted text
// (errors, not exceptions), escape handling, numeric round-trips, and the
// deterministic compact serialiser.

#include "net/json.h"

#include <gtest/gtest.h>

namespace picola::net {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null")->is_null());
  EXPECT_TRUE(JsonValue::parse("true")->as_bool());
  EXPECT_FALSE(JsonValue::parse("false")->as_bool());
  EXPECT_EQ(JsonValue::parse("42")->as_int(), 42);
  EXPECT_EQ(JsonValue::parse("-7")->as_int(), -7);
  EXPECT_DOUBLE_EQ(JsonValue::parse("2.5")->as_double(), 2.5);
  EXPECT_DOUBLE_EQ(JsonValue::parse("1e3")->as_double(), 1000.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"")->as_string(), "hi");
}

TEST(Json, IntegerTokensStayExactInt64) {
  auto v = JsonValue::parse("9223372036854775807");
  ASSERT_TRUE(v && v->is_int());
  EXPECT_EQ(v->as_int(), INT64_MAX);
  // Out of int64 range falls back to double instead of failing.
  auto big = JsonValue::parse("92233720368547758080");
  ASSERT_TRUE(big && big->is_number());
  EXPECT_FALSE(big->is_int());
}

TEST(Json, ObjectAndArrayAccess) {
  auto v = JsonValue::parse(R"({"a":[1,2,3],"b":{"c":true}})");
  ASSERT_TRUE(v && v->is_object());
  const JsonValue* a = v->find("a");
  ASSERT_TRUE(a && a->is_array());
  EXPECT_EQ(a->items().size(), 3u);
  EXPECT_EQ(a->items()[2].as_int(), 3);
  const JsonValue* b = v->find("b");
  ASSERT_TRUE(b && b->find("c"));
  EXPECT_TRUE(b->find("c")->as_bool());
  EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(Json, EscapesRoundTrip) {
  auto v = JsonValue::parse(R"("a\"b\\c\/d\n\t\r\b\f")");
  ASSERT_TRUE(v);
  EXPECT_EQ(v->as_string(), "a\"b\\c/d\n\t\r\b\f");
  // dump() re-escapes; reparse gives the same string back.
  auto again = JsonValue::parse(v->dump());
  ASSERT_TRUE(again);
  EXPECT_EQ(again->as_string(), v->as_string());
}

TEST(Json, UnicodeEscapes) {
  auto v = JsonValue::parse(R"("Aé中")");
  ASSERT_TRUE(v);
  EXPECT_EQ(v->as_string(), "A\xc3\xa9\xe4\xb8\xad");  // A, é, 中 in UTF-8
  // Surrogate pair: U+1F600.
  auto emoji = JsonValue::parse(R"("😀")");
  ASSERT_TRUE(emoji);
  EXPECT_EQ(emoji->as_string(), "\xf0\x9f\x98\x80");
}

TEST(Json, MalformedInputReturnsErrorNotThrow) {
  std::string error;
  EXPECT_FALSE(JsonValue::parse("", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(JsonValue::parse("{", &error));
  EXPECT_FALSE(JsonValue::parse("[1,", &error));
  EXPECT_FALSE(JsonValue::parse("\"unterminated", &error));
  EXPECT_FALSE(JsonValue::parse("nul", &error));
  EXPECT_FALSE(JsonValue::parse("{\"a\" 1}", &error));
  EXPECT_FALSE(JsonValue::parse("1 2", &error));  // trailing garbage
  EXPECT_FALSE(JsonValue::parse("\"bad \x01 control\"", &error));
  EXPECT_FALSE(JsonValue::parse(R"("\ud83d")", &error));  // lone surrogate
}

TEST(Json, DepthLimitStopsHostileNesting) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  std::string error;
  EXPECT_FALSE(JsonValue::parse(deep, &error));
  // A reasonable depth still parses.
  std::string ok(30, '[');
  ok += std::string(30, ']');
  EXPECT_TRUE(JsonValue::parse(ok));
}

TEST(Json, DumpIsDeterministicSortedCompact) {
  JsonValue v = JsonValue::make_object();
  v.set("zeta", JsonValue::make_int(1));
  v.set("alpha", JsonValue::make_bool(false));
  JsonValue arr = JsonValue::make_array();
  arr.push_back(JsonValue::make_string("x"));
  arr.push_back(JsonValue());
  v.set("mid", arr);
  EXPECT_EQ(v.dump(), R"({"alpha":false,"mid":["x",null],"zeta":1})");
}

TEST(Json, DumpEscapesControlCharacters) {
  JsonValue v = JsonValue::make_string(std::string("a\nb\x01") + "\"\\");
  auto back = JsonValue::parse(v.dump());
  ASSERT_TRUE(back);
  EXPECT_EQ(back->as_string(), v.as_string());
}

}  // namespace
}  // namespace picola::net
