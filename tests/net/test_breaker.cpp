// net/breaker.h — the shared circuit breaker extracted from the client.
// The headline regression here is the half-open single-probe guard under
// concurrency: the pre-cluster client kept breaker state in two plain
// fields, so several threads sharing one breaker could all decide "the
// window expired, I'll probe" and hammer a barely-recovered server.  The
// flapping-server test below fails against that implementation and
// passes against the guarded one.

#include "net/breaker.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace picola::net {
namespace {

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

TEST(Breaker, OpensAfterThresholdConsecutiveFailures) {
  CircuitBreaker b(BreakerOptions{3, 10'000});
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_FALSE(b.on_failure(false));
  EXPECT_FALSE(b.on_failure(false));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(b.on_failure(false));  // third strike trips it
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_GT(b.remaining_ms(), 0);

  CircuitBreaker::Decision d = b.acquire();
  EXPECT_FALSE(d.allow);
  EXPECT_GE(d.retry_in_ms, 1);
  EXPECT_EQ(b.stats().opens, 1u);
  EXPECT_EQ(b.stats().fail_fasts, 1u);
}

TEST(Breaker, SuccessResetsTheFailureCount) {
  CircuitBreaker b(BreakerOptions{2, 10'000});
  EXPECT_FALSE(b.on_failure(false));
  b.on_success(false);  // interleaved success: the streak restarts
  EXPECT_FALSE(b.on_failure(false));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
}

TEST(Breaker, HandsOutExactlyOneProbeAfterTheWindow) {
  CircuitBreaker b(BreakerOptions{1, 30});
  EXPECT_TRUE(b.on_failure(false));
  EXPECT_FALSE(b.acquire().allow);  // still inside the window
  sleep_ms(40);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kHalfOpen);

  CircuitBreaker::Decision probe = b.acquire();
  EXPECT_TRUE(probe.allow);
  EXPECT_TRUE(probe.probe);
  CircuitBreaker::Decision second = b.acquire();
  EXPECT_FALSE(second.allow);  // the probe is out; everyone else waits
  EXPECT_EQ(b.stats().probes, 1u);
  EXPECT_EQ(b.stats().probe_rejections, 1u);

  b.on_success(true);  // probe came back: closed again
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(b.acquire().allow);
}

TEST(Breaker, FailedProbeReopensImmediately) {
  CircuitBreaker b(BreakerOptions{4, 30});
  for (int i = 0; i < 4; ++i) b.on_failure(false);
  sleep_ms(40);
  CircuitBreaker::Decision probe = b.acquire();
  ASSERT_TRUE(probe.probe);
  // One failed probe re-opens regardless of the threshold: the server
  // proved it is still unwell.
  EXPECT_TRUE(b.on_failure(true));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(b.stats().opens, 2u);
}

// The regression test: a "server" that flaps up and down while many
// threads share one breaker.  At no instant may two probes be in flight
// — that is precisely the thundering herd the guard exists to prevent.
TEST(Breaker, SingleProbeInvariantHoldsUnderConcurrentFlapping) {
  CircuitBreaker b(BreakerOptions{2, 5});
  std::atomic<bool> server_up{false};
  std::atomic<bool> stop{false};
  std::atomic<int> probes_inflight{0};
  std::atomic<int> max_probes_inflight{0};
  std::atomic<uint64_t> calls{0};

  auto worker = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      CircuitBreaker::Decision d = b.acquire();
      if (!d.allow) {
        std::this_thread::yield();
        continue;
      }
      if (d.probe) {
        int now = probes_inflight.fetch_add(1, std::memory_order_acq_rel) + 1;
        int seen = max_probes_inflight.load(std::memory_order_relaxed);
        while (now > seen &&
               !max_probes_inflight.compare_exchange_weak(seen, now)) {
        }
        // Hold the probe long enough that a second, unguarded probe
        // would overlap it.
        sleep_ms(1);
      }
      calls.fetch_add(1, std::memory_order_relaxed);
      bool ok = server_up.load(std::memory_order_relaxed);
      if (d.probe) probes_inflight.fetch_sub(1, std::memory_order_acq_rel);
      if (ok)
        b.on_success(d.probe);
      else
        b.on_failure(d.probe);
    }
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) threads.emplace_back(worker);
  // Flap the server: down/up repeatedly so the breaker cycles through
  // closed -> open -> half-open -> (probe fails or succeeds) many times.
  for (int flap = 0; flap < 20; ++flap) {
    server_up.store(flap % 2 == 1, std::memory_order_relaxed);
    sleep_ms(10);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();

  CircuitBreaker::Stats s = b.stats();
  EXPECT_GT(calls.load(), 0u);
  EXPECT_GE(s.opens, 2u) << "the flapping never tripped the breaker";
  EXPECT_GE(s.probes, 1u) << "no half-open window was ever probed";
  // The invariant under test: never more than one concurrent probe.
  EXPECT_EQ(max_probes_inflight.load(), 1);
  // And the guard actually did some rejecting (8 threads racing every
  // half-open window virtually guarantees contention).
  EXPECT_GE(s.probe_rejections, 1u);
}

}  // namespace
}  // namespace picola::net
