#include <gtest/gtest.h>

#include <random>

#include "core/input_encoding.h"
#include "pla/mv_pla.h"

namespace picola {
namespace {

// The encoded function must equal the original under code substitution:
// for every non-dc minterm (x, v, rest), original coverage at symbol v ==
// encoded coverage at code(v).
void check_substitution_sound(const Cover& onset, const Cover& dc, int var,
                              const InputEncodingResult& r) {
  const CubeSpace& s = onset.space();
  const CubeSpace& es = r.encoded_space;
  const int nv = r.encoding.num_bits;
  Cover::for_each_minterm(s, [&](const std::vector<int>& mt) {
    if (dc.covers_minterm(mt)) return;  // free either way
    // Translate to the encoded space.
    std::vector<int> emt;
    for (int u = 0; u < s.num_vars(); ++u) {
      if (u == var) {
        uint32_t code = r.encoding.code(mt[static_cast<size_t>(u)]);
        for (int b = 0; b < nv; ++b)
          emt.push_back(static_cast<int>((code >> b) & 1u));
      } else {
        emt.push_back(mt[static_cast<size_t>(u)]);
      }
    }
    bool want = onset.covers_minterm(mt);
    bool enc_dc = r.encoded_dc.covers_minterm(emt);
    if (enc_dc) return;  // the encoded flow may declare extra dc (unused codes)
    EXPECT_EQ(r.minimized.covers_minterm(emt), want)
        << "substitution changed the function";
    (void)es;
  });
}

MvPla builtin() {
  MvPlaParseResult r = parse_mv_pla(R"(.mv 4 2 6 4
00 100110 1000
01 100110 1000
1- 100110 0100
-0 011000 0010
-1 011000 0011
00 000001 0001
01 000001 1001
1- 000001 0001
.e
)");
  EXPECT_TRUE(r.ok()) << r.error;
  return r.pla;
}

TEST(InputEncoding, ReplaceVarLayout) {
  CubeSpace s = CubeSpace::multi_valued({2, 5, 3});
  CubeSpace t = replace_var_with_bits(s, 1, 3);
  EXPECT_EQ(t.num_vars(), 5);
  EXPECT_EQ(t.parts(0), 2);
  EXPECT_EQ(t.parts(1), 2);
  EXPECT_EQ(t.parts(2), 2);
  EXPECT_EQ(t.parts(3), 2);
  EXPECT_EQ(t.parts(4), 3);
}

TEST(InputEncoding, BuiltinFlowIsSound) {
  MvPla pla = builtin();
  InputEncodingResult r =
      encode_symbolic_input(pla.onset(), pla.dcset(), pla.num_binary);
  EXPECT_EQ(r.encoding.num_bits, 3);
  EXPECT_EQ(r.encoding.validate(), "");
  EXPECT_GE(r.constraints.size(), 1);
  check_substitution_sound(pla.onset(), pla.dcset(), pla.num_binary, r);
}

TEST(InputEncoding, AllEncodersProduceSoundResults) {
  MvPla pla = builtin();
  for (InputEncoder e :
       {InputEncoder::kPicola, InputEncoder::kNovaLike, InputEncoder::kEncLike,
        InputEncoder::kSequential, InputEncoder::kRandom}) {
    InputEncodingOptions opt;
    opt.encoder = e;
    InputEncodingResult r =
        encode_symbolic_input(pla.onset(), pla.dcset(), pla.num_binary, opt);
    check_substitution_sound(pla.onset(), pla.dcset(), pla.num_binary, r);
  }
}

TEST(InputEncoding, EncodedGroupCoversExactlyMembers) {
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    int n = 5 + static_cast<int>(rng() % 8);
    Encoding e;
    e.num_symbols = n;
    e.num_bits = Encoding::min_bits(n);
    std::vector<uint32_t> pool(size_t{1} << e.num_bits);
    for (size_t i = 0; i < pool.size(); ++i) pool[i] = static_cast<uint32_t>(i);
    std::shuffle(pool.begin(), pool.end(), rng);
    e.codes.assign(pool.begin(), pool.begin() + n);

    std::vector<int> members;
    for (int v = 0; v < n; ++v)
      if (rng() % 2) members.push_back(v);
    if (members.empty()) members.push_back(0);

    auto cubes = encode_symbol_group(members, e);
    for (int v = 0; v < n; ++v) {
      bool covered = false;
      for (const CodeCube& cc : cubes)
        if (cc.contains(e.code(v))) covered = true;
      bool is_member =
          std::find(members.begin(), members.end(), v) != members.end();
      EXPECT_EQ(covered, is_member);
    }
  }
}

TEST(InputEncoding, WiderCodesReduceCubes) {
  // With one extra bit every constraint fits, so the encoded cover can
  // match the symbolic cube count.
  MvPla pla = builtin();
  InputEncodingOptions wide;
  wide.num_bits = 4;
  InputEncodingResult r4 =
      encode_symbolic_input(pla.onset(), pla.dcset(), pla.num_binary, wide);
  InputEncodingResult r3 =
      encode_symbolic_input(pla.onset(), pla.dcset(), pla.num_binary);
  EXPECT_LE(r4.minimized.size(), r3.minimized.size());
  check_substitution_sound(pla.onset(), pla.dcset(), pla.num_binary, r4);
}

TEST(InputEncoding, SkipFinalMinimisation) {
  MvPla pla = builtin();
  InputEncodingOptions opt;
  opt.minimize_final = false;
  InputEncodingResult r =
      encode_symbolic_input(pla.onset(), pla.dcset(), pla.num_binary, opt);
  EXPECT_EQ(r.minimized.size(), r.encoded_onset.size());
}

}  // namespace
}  // namespace picola
