#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

#include "check/verifier.h"
#include "constraints/dichotomy.h"
#include "core/picola.h"
#include "eval/constraint_eval.h"

namespace picola {
namespace {

// The paper's Figure 1b constraint set: 15 symbols,
// L1 = {s2,s6,s8,s14}, L2 = {s1,s2}, L3 = {s9,s14},
// L4 = {s6,s7,s8,s9,s14}  (symbol s<i> is id i-1).
ConstraintSet paper_constraints() {
  ConstraintSet cs;
  cs.num_symbols = 15;
  cs.add({1, 5, 7, 13});
  cs.add({0, 1});
  cs.add({8, 13});
  cs.add({5, 6, 7, 8, 13});
  return cs;
}

TEST(Picola, ProducesValidMinimumLengthEncoding) {
  PicolaResult r = picola_encode(paper_constraints());
  EXPECT_EQ(r.encoding.num_bits, 4);
  EXPECT_EQ(r.encoding.validate(), "");
}

TEST(Picola, PaperExampleQuality) {
  // The paper shows that L1..L3 can be satisfied while the infeasible L4
  // is implemented with two cubes (five cubes in total).
  PicolaResult r = picola_encode(paper_constraints());
  ConstraintEvalResult eval =
      evaluate_constraints(paper_constraints(), r.encoding);
  EXPECT_GE(eval.satisfied, 3);
  EXPECT_LE(eval.total_cubes, 5);
}

TEST(Picola, SolveColumnRespectsCapacity) {
  ConstraintSet cs;
  cs.num_symbols = 8;
  cs.add({0, 1, 2, 3});
  ConstraintMatrix m(cs, 3);
  std::vector<uint32_t> prefixes(8, 0);
  PicolaOptions opt;
  std::vector<int> bits = detail::solve_column(m, prefixes, 0, opt);
  int zeros = 0;
  for (int b : bits) zeros += b == 0;
  // 8 symbols, capacity 4 per side: the column must balance exactly.
  EXPECT_EQ(zeros, 4);
}

TEST(Picola, SolveColumnSatisfiesSeparableConstraint) {
  // {0,1} among 4 symbols: the first column can pin the pair together and
  // separate at least one outsider.
  ConstraintSet cs;
  cs.num_symbols = 4;
  cs.add({0, 1});
  ConstraintMatrix m(cs, 2);
  std::vector<uint32_t> prefixes(4, 0);
  PicolaOptions opt;
  std::vector<int> bits = detail::solve_column(m, prefixes, 0, opt);
  EXPECT_EQ(bits[0], bits[1]) << "members should stay together";
}

TEST(Picola, EveryRunSatisfiedCountMatchesEvaluator) {
  ConstraintSet cs = paper_constraints();
  PicolaResult r = picola_encode(cs);
  EXPECT_EQ(r.stats.satisfied_constraints,
            count_satisfied_constraints(cs, r.encoding));
}

TEST(Picola, GuidesImproveInfeasibleConstraintCost) {
  // 8 symbols in B^3 with two size-4 constraints that cannot both be
  // satisfied (see test_feasibility): with guides the loser must still be
  // implemented economically.
  ConstraintSet cs;
  cs.num_symbols = 8;
  cs.add({0, 1, 2, 3});
  cs.add({3, 4, 5, 6});
  PicolaOptions with;
  PicolaResult r1 = picola_encode(cs, with);
  PicolaOptions without;
  without.use_guides = false;
  PicolaResult r2 = picola_encode(cs, without);
  int c1 = evaluate_constraints(cs, r1.encoding).total_cubes;
  int c2 = evaluate_constraints(cs, r2.encoding).total_cubes;
  EXPECT_LE(c1, c2);
  EXPECT_GE(r1.stats.guides_added, 0);
}

TEST(Picola, ExplicitWiderCodeSatisfiesEverything) {
  // With nv = 4 both constraints of the infeasible pair fit.
  ConstraintSet cs;
  cs.num_symbols = 8;
  cs.add({0, 1, 2, 3});
  cs.add({4, 5, 6, 7});
  PicolaOptions opt;
  opt.num_bits = 3;
  PicolaResult r = picola_encode(cs, opt);
  EXPECT_EQ(count_satisfied_constraints(cs, r.encoding), 2);
}

TEST(Picola, TwoSymbolEdgeCase) {
  ConstraintSet cs;
  cs.num_symbols = 2;
  PicolaResult r = picola_encode(cs);
  EXPECT_EQ(r.encoding.num_bits, 1);
  EXPECT_EQ(r.encoding.validate(), "");
}

TEST(Picola, EmptyConstraintSetStillEncodes) {
  ConstraintSet cs;
  cs.num_symbols = 5;
  PicolaResult r = picola_encode(cs);
  EXPECT_EQ(r.encoding.num_bits, 3);
  EXPECT_EQ(r.encoding.validate(), "");
}

TEST(Picola, DeterministicAcrossRuns) {
  ConstraintSet cs = paper_constraints();
  PicolaResult a = picola_encode(cs);
  PicolaResult b = picola_encode(cs);
  EXPECT_EQ(a.encoding.codes, b.encoding.codes);
}

TEST(Picola, MultiStartNeverWorseThanSingle) {
  ConstraintSet cs = paper_constraints();
  int single = evaluate_constraints(cs, picola_encode(cs).encoding).total_cubes;
  PicolaResult best = picola_encode_best(cs, 8);
  EXPECT_EQ(best.encoding.validate(), "");
  EXPECT_LE(evaluate_constraints(cs, best.encoding).total_cubes, single);
}

TEST(Picola, MultiStartDeterministic) {
  ConstraintSet cs = paper_constraints();
  EXPECT_EQ(picola_encode_best(cs, 5).encoding.codes,
            picola_encode_best(cs, 5).encoding.codes);
}

TEST(Picola, RandomTieBreakStillValid) {
  ConstraintSet cs = paper_constraints();
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    PicolaOptions o;
    o.tie_break_seed = seed;
    EXPECT_EQ(picola_encode(cs, o).encoding.validate(), "");
  }
}

class PicolaRandomSets : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PicolaRandomSets, AlwaysValidAndNoWorseThanUnguided) {
  std::mt19937 rng(GetParam());
  int n = 5 + static_cast<int>(rng() % 12);
  ConstraintSet cs;
  cs.num_symbols = n;
  int r = 2 + static_cast<int>(rng() % 8);
  for (int k = 0; k < r; ++k) {
    std::vector<int> members;
    for (int s = 0; s < n; ++s)
      if (rng() % 3 == 0) members.push_back(s);
    cs.add(std::move(members));
  }
  PicolaResult res = picola_encode(cs);
  EXPECT_EQ(res.encoding.validate(), "");
  EXPECT_EQ(res.encoding.num_bits, Encoding::min_bits(n));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PicolaRandomSets, ::testing::Range(100u, 140u));

TEST(PicolaValidation, RejectsTooShortCodeLength) {
  // Regression: 15 symbols do not fit in 2 bits; this used to trip an
  // assert (or silently truncate in release builds).
  ConstraintSet cs = paper_constraints();
  PicolaOptions opt;
  opt.num_bits = 2;
  EXPECT_THROW(picola_encode(cs, opt), std::invalid_argument);
}

TEST(PicolaValidation, RejectsCodeLengthsBeyond32BitCodes) {
  // Regression: codes accumulate in uint32_t, so num_bits > 31 used to
  // shift bits off the end and emit truncated (colliding) codes.
  ConstraintSet cs = paper_constraints();
  for (int bits : {32, 40, 64}) {
    PicolaOptions opt;
    opt.num_bits = bits;
    EXPECT_THROW(picola_encode(cs, opt), std::invalid_argument) << bits;
  }
}

TEST(PicolaValidation, ThirtyOneBitsIsTheLegalBoundary) {
  ConstraintSet cs;
  cs.num_symbols = 4;
  cs.add({0, 1});
  PicolaOptions opt;
  opt.num_bits = 31;
  PicolaResult r = picola_encode(cs, opt);
  EXPECT_EQ(r.encoding.num_bits, 31);
  EXPECT_EQ(r.encoding.validate(), "");
}

TEST(PicolaValidation, RejectsMalformedConstraintSets) {
  ConstraintSet cs;
  cs.num_symbols = 4;
  FaceConstraint c;
  c.members = {0, 0};  // duplicate member, bypassing add()
  cs.constraints.push_back(c);
  EXPECT_THROW(picola_encode(cs), std::invalid_argument);
  ConstraintSet tiny;
  tiny.num_symbols = 1;
  EXPECT_THROW(picola_encode(tiny), std::invalid_argument);
}

TEST(PicolaSolveColumn, RescuePathFlipsWithoutPositiveGain) {
  // 6 symbols in B^3, no constraints: every flip has gain 0, yet the
  // all-ones start leaves one prefix group with 6 > cap = 4 symbols, so
  // Solve() must take zero-gain flips until the column is valid.
  ConstraintSet cs;
  cs.num_symbols = 6;
  ConstraintMatrix m(cs, 3);
  std::vector<uint32_t> prefixes(6, 0);
  PicolaOptions opt;
  std::vector<int> bits = detail::solve_column(m, prefixes, 0, opt);
  int zeros = 0;
  for (int b : bits) zeros += b == 0;
  EXPECT_EQ(zeros, 2) << "exactly enough rescue flips, no more";
}

TEST(PicolaSolveColumn, RescueRestrictsFlipsToOversizedGroups) {
  // Column 1 of B^3 (cap = 2): symbols 0-1 share prefix 1 (fits), 2-5
  // share prefix 0 (four on the 1-side, oversized).  With no constraints
  // every flip ties at gain 0, and the deterministic tie-break prefers
  // the lowest index — so without the oversized-group filter the rescue
  // would uselessly flip symbols 0 and 1 first.  It must go straight to
  // the oversized group and leave the small one alone.
  ConstraintSet cs;
  cs.num_symbols = 6;
  ConstraintMatrix m(cs, 3);
  m.record_column({1, 1, 0, 0, 0, 0});
  std::vector<uint32_t> prefixes = {1, 1, 0, 0, 0, 0};
  PicolaOptions opt;
  std::vector<int> bits = detail::solve_column(m, prefixes, 1, opt);
  EXPECT_EQ(bits[0], 1) << "small group must not be touched";
  EXPECT_EQ(bits[1], 1) << "small group must not be touched";
  long group0_zeros = 0;
  for (int j = 2; j < 6; ++j)
    group0_zeros += bits[static_cast<size_t>(j)] == 0;
  EXPECT_EQ(group0_zeros, 2) << "exactly enough rescue flips";
  check::VerifyReport rep = check::verify_column(bits, prefixes, 1, 3);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(PicolaDeterminism, RandomTieBreakingIsReproducible) {
  ConstraintSet cs = paper_constraints();
  PicolaOptions opt;
  opt.tie_break_seed = 42;
  Encoding a = picola_encode(cs, opt).encoding;
  Encoding b = picola_encode(cs, opt).encoding;
  EXPECT_EQ(a.codes, b.codes);
  PicolaOptions other;
  other.tie_break_seed = 43;
  // Different seeds are allowed to differ (not asserted), but must stay
  // valid and self-check clean.
  other.self_check = true;
  EXPECT_EQ(picola_encode(cs, other).encoding.validate(), "");
}

TEST(PicolaStatsEvents, InfeasibleEventsMatchPerColumnCounts) {
  // 8 symbols in B^3 with two size-4 constraints that cannot both hold:
  // at least one infeasibility event must be recorded, and the events
  // must tally with infeasible_per_column.
  ConstraintSet cs;
  cs.num_symbols = 8;
  cs.add({0, 1, 2, 3});
  cs.add({2, 3, 4, 5});
  PicolaResult r = picola_encode(cs);
  size_t total = 0;
  for (int c : r.stats.infeasible_per_column)
    total += static_cast<size_t>(c);
  EXPECT_EQ(r.stats.infeasible_events.size(), total);
  for (auto [col, row] : r.stats.infeasible_events) {
    EXPECT_GE(col, 0);
    EXPECT_LT(col, r.encoding.num_bits);
    EXPECT_GE(row, 0);
  }
}

}  // namespace
}  // namespace picola
