#include <gtest/gtest.h>

#include <random>

#include "constraints/dichotomy.h"
#include "core/picola.h"
#include "eval/constraint_eval.h"

namespace picola {
namespace {

// The paper's Figure 1b constraint set: 15 symbols,
// L1 = {s2,s6,s8,s14}, L2 = {s1,s2}, L3 = {s9,s14},
// L4 = {s6,s7,s8,s9,s14}  (symbol s<i> is id i-1).
ConstraintSet paper_constraints() {
  ConstraintSet cs;
  cs.num_symbols = 15;
  cs.add({1, 5, 7, 13});
  cs.add({0, 1});
  cs.add({8, 13});
  cs.add({5, 6, 7, 8, 13});
  return cs;
}

TEST(Picola, ProducesValidMinimumLengthEncoding) {
  PicolaResult r = picola_encode(paper_constraints());
  EXPECT_EQ(r.encoding.num_bits, 4);
  EXPECT_EQ(r.encoding.validate(), "");
}

TEST(Picola, PaperExampleQuality) {
  // The paper shows that L1..L3 can be satisfied while the infeasible L4
  // is implemented with two cubes (five cubes in total).
  PicolaResult r = picola_encode(paper_constraints());
  ConstraintEvalResult eval =
      evaluate_constraints(paper_constraints(), r.encoding);
  EXPECT_GE(eval.satisfied, 3);
  EXPECT_LE(eval.total_cubes, 5);
}

TEST(Picola, SolveColumnRespectsCapacity) {
  ConstraintSet cs;
  cs.num_symbols = 8;
  cs.add({0, 1, 2, 3});
  ConstraintMatrix m(cs, 3);
  std::vector<uint32_t> prefixes(8, 0);
  PicolaOptions opt;
  std::vector<int> bits = detail::solve_column(m, prefixes, 0, opt);
  int zeros = 0;
  for (int b : bits) zeros += b == 0;
  // 8 symbols, capacity 4 per side: the column must balance exactly.
  EXPECT_EQ(zeros, 4);
}

TEST(Picola, SolveColumnSatisfiesSeparableConstraint) {
  // {0,1} among 4 symbols: the first column can pin the pair together and
  // separate at least one outsider.
  ConstraintSet cs;
  cs.num_symbols = 4;
  cs.add({0, 1});
  ConstraintMatrix m(cs, 2);
  std::vector<uint32_t> prefixes(4, 0);
  PicolaOptions opt;
  std::vector<int> bits = detail::solve_column(m, prefixes, 0, opt);
  EXPECT_EQ(bits[0], bits[1]) << "members should stay together";
}

TEST(Picola, EveryRunSatisfiedCountMatchesEvaluator) {
  ConstraintSet cs = paper_constraints();
  PicolaResult r = picola_encode(cs);
  EXPECT_EQ(r.stats.satisfied_constraints,
            count_satisfied_constraints(cs, r.encoding));
}

TEST(Picola, GuidesImproveInfeasibleConstraintCost) {
  // 8 symbols in B^3 with two size-4 constraints that cannot both be
  // satisfied (see test_feasibility): with guides the loser must still be
  // implemented economically.
  ConstraintSet cs;
  cs.num_symbols = 8;
  cs.add({0, 1, 2, 3});
  cs.add({3, 4, 5, 6});
  PicolaOptions with;
  PicolaResult r1 = picola_encode(cs, with);
  PicolaOptions without;
  without.use_guides = false;
  PicolaResult r2 = picola_encode(cs, without);
  int c1 = evaluate_constraints(cs, r1.encoding).total_cubes;
  int c2 = evaluate_constraints(cs, r2.encoding).total_cubes;
  EXPECT_LE(c1, c2);
  EXPECT_GE(r1.stats.guides_added, 0);
}

TEST(Picola, ExplicitWiderCodeSatisfiesEverything) {
  // With nv = 4 both constraints of the infeasible pair fit.
  ConstraintSet cs;
  cs.num_symbols = 8;
  cs.add({0, 1, 2, 3});
  cs.add({4, 5, 6, 7});
  PicolaOptions opt;
  opt.num_bits = 3;
  PicolaResult r = picola_encode(cs, opt);
  EXPECT_EQ(count_satisfied_constraints(cs, r.encoding), 2);
}

TEST(Picola, TwoSymbolEdgeCase) {
  ConstraintSet cs;
  cs.num_symbols = 2;
  PicolaResult r = picola_encode(cs);
  EXPECT_EQ(r.encoding.num_bits, 1);
  EXPECT_EQ(r.encoding.validate(), "");
}

TEST(Picola, EmptyConstraintSetStillEncodes) {
  ConstraintSet cs;
  cs.num_symbols = 5;
  PicolaResult r = picola_encode(cs);
  EXPECT_EQ(r.encoding.num_bits, 3);
  EXPECT_EQ(r.encoding.validate(), "");
}

TEST(Picola, DeterministicAcrossRuns) {
  ConstraintSet cs = paper_constraints();
  PicolaResult a = picola_encode(cs);
  PicolaResult b = picola_encode(cs);
  EXPECT_EQ(a.encoding.codes, b.encoding.codes);
}

TEST(Picola, MultiStartNeverWorseThanSingle) {
  ConstraintSet cs = paper_constraints();
  int single = evaluate_constraints(cs, picola_encode(cs).encoding).total_cubes;
  PicolaResult best = picola_encode_best(cs, 8);
  EXPECT_EQ(best.encoding.validate(), "");
  EXPECT_LE(evaluate_constraints(cs, best.encoding).total_cubes, single);
}

TEST(Picola, MultiStartDeterministic) {
  ConstraintSet cs = paper_constraints();
  EXPECT_EQ(picola_encode_best(cs, 5).encoding.codes,
            picola_encode_best(cs, 5).encoding.codes);
}

TEST(Picola, RandomTieBreakStillValid) {
  ConstraintSet cs = paper_constraints();
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    PicolaOptions o;
    o.tie_break_seed = seed;
    EXPECT_EQ(picola_encode(cs, o).encoding.validate(), "");
  }
}

class PicolaRandomSets : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PicolaRandomSets, AlwaysValidAndNoWorseThanUnguided) {
  std::mt19937 rng(GetParam());
  int n = 5 + static_cast<int>(rng() % 12);
  ConstraintSet cs;
  cs.num_symbols = n;
  int r = 2 + static_cast<int>(rng() % 8);
  for (int k = 0; k < r; ++k) {
    std::vector<int> members;
    for (int s = 0; s < n; ++s)
      if (rng() % 3 == 0) members.push_back(s);
    cs.add(std::move(members));
  }
  PicolaResult res = picola_encode(cs);
  EXPECT_EQ(res.encoding.validate(), "");
  EXPECT_EQ(res.encoding.num_bits, Encoding::min_bits(n));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PicolaRandomSets, ::testing::Range(100u, 140u));

}  // namespace
}  // namespace picola
