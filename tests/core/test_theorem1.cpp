// Theorem I and the paper's running example (examples 3 and 4).

#include <gtest/gtest.h>

#include "constraints/dichotomy.h"
#include <random>
#include <algorithm>

#include "core/theorem1.h"

namespace picola {
namespace {

// Encoding reproducing the structure of the paper's examples 3/4:
// s1 = 0000, s2 = 0010; the members of L4 = {s6,s7,s8,s9,s14} fill the rest
// of the half-space 0--- except 0101 (unused); everything else lives in
// 1---.  Intruders of L4 are then s1 and s2 with super(I4) = 00-0, and
// Theorem I implements L4 with dim(0---) - dim(00-0) = 3 - 1 = 2 cubes:
// {01--, 0--1}.  (Bit order here: code bit 3 is the leftmost literal.)
Encoding example_encoding() {
  Encoding e;
  e.num_symbols = 15;
  e.num_bits = 4;
  e.codes.assign(15, 0);
  e.codes[0] = 0b0000;   // s1
  e.codes[1] = 0b0010;   // s2
  e.codes[5] = 0b0001;   // s6
  e.codes[6] = 0b0011;   // s7
  e.codes[7] = 0b0100;   // s8
  e.codes[8] = 0b0110;   // s9
  e.codes[13] = 0b0111;  // s14
  // remaining ids {2,3,4,9,10,11,12,14} -> 1000..1111
  uint32_t next = 0b1000;
  for (int id : {2, 3, 4, 9, 10, 11, 12, 14}) e.codes[static_cast<size_t>(id)] = next++;
  return e;
}

FaceConstraint l4() {
  FaceConstraint c;
  c.members = {5, 6, 7, 8, 13};
  return c;
}

TEST(Theorem1, PaperExampleIntruders) {
  Encoding e = example_encoding();
  EXPECT_EQ(e.validate(), "");
  EXPECT_EQ(intruders(l4(), e), (std::vector<int>{0, 1}));
  CodeCube super_l = e.supercube(l4().members);
  EXPECT_EQ(super_l.dim(4), 3);           // 0---
  EXPECT_EQ(super_l.care, 0b1000u);
  EXPECT_EQ(super_l.value, 0b0000u);
  CodeCube super_i = e.supercube({0, 1});
  EXPECT_EQ(super_i.dim(4), 1);           // 00-0
  EXPECT_EQ(super_i.care, 0b1101u);
}

TEST(Theorem1, PaperExampleCubeCount) {
  auto count = theorem1_cube_count(l4(), example_encoding());
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(*count, 2);  // dim[super(L4)] - dim[super(I4)] = 3 - 1
}

TEST(Theorem1, PaperExampleConstructiveCover) {
  Encoding e = example_encoding();
  auto cover = theorem1_cover(l4(), e);
  ASSERT_TRUE(cover.has_value());
  ASSERT_EQ(cover->size(), 2u);
  // Expected cubes 01-- (care 1100, value 0100) and 0--1 (care 1001,
  // value 0001), in either order.
  CodeCube a{0b1100, 0b0100};
  CodeCube b{0b1001, 0b0001};
  EXPECT_TRUE(((*cover)[0] == a && (*cover)[1] == b) ||
              ((*cover)[0] == b && (*cover)[1] == a));
}

TEST(Theorem1, CoverIsSoundOnExample) {
  Encoding e = example_encoding();
  auto cover = theorem1_cover(l4(), e);
  ASSERT_TRUE(cover.has_value());
  FaceConstraint c = l4();
  for (int s = 0; s < 15; ++s) {
    bool covered = false;
    for (const auto& cc : *cover)
      if (cc.contains(e.code(s))) covered = true;
    EXPECT_EQ(covered, c.contains(s)) << "symbol " << s;
  }
}

TEST(Theorem1, SatisfiedConstraintIsOneCube) {
  Encoding e = example_encoding();
  FaceConstraint c;
  c.members = {0, 1};  // super 00-0 excludes everyone else
  auto count = theorem1_cube_count(c, e);
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(*count, 1);
  auto cover = theorem1_cover(c, e);
  ASSERT_TRUE(cover.has_value());
  EXPECT_EQ(cover->size(), 1u);
}

TEST(Theorem1, PreconditionFailureReturnsNullopt) {
  // Intruders 00 and 11 of members {01, 10}: super(I) covers everything,
  // including the members.
  Encoding e;
  e.num_symbols = 4;
  e.num_bits = 2;
  e.codes = {0b01, 0b10, 0b00, 0b11};
  FaceConstraint c;
  c.members = {0, 1};
  EXPECT_FALSE(theorem1_cover(c, e).has_value());
  EXPECT_FALSE(theorem1_cube_count(c, e).has_value());
}

TEST(Theorem1, RandomisedSoundness) {
  // For random encodings and constraints where the precondition holds,
  // the constructive cover must cover exactly the members among used
  // codes and match the claimed size.
  std::mt19937_64 rng(77);
  int applicable = 0;
  for (int trial = 0; trial < 300; ++trial) {
    int n = 5 + static_cast<int>(rng() % 8);  // 5..12 symbols
    Encoding e;
    e.num_symbols = n;
    e.num_bits = Encoding::min_bits(n);
    std::vector<uint32_t> pool(size_t{1} << e.num_bits);
    for (size_t i = 0; i < pool.size(); ++i) pool[i] = static_cast<uint32_t>(i);
    std::shuffle(pool.begin(), pool.end(), rng);
    e.codes.assign(pool.begin(), pool.begin() + n);

    FaceConstraint c;
    for (int s = 0; s < n; ++s)
      if (rng() % 2) c.members.push_back(s);
    if (static_cast<int>(c.members.size()) < 2 ||
        static_cast<int>(c.members.size()) >= n)
      continue;

    auto cover = theorem1_cover(c, e);
    if (!cover) continue;
    ++applicable;
    auto count = theorem1_cube_count(c, e);
    ASSERT_TRUE(count.has_value());
    EXPECT_EQ(static_cast<int>(cover->size()), *count == 1 ? 1 : *count);
    for (int s = 0; s < n; ++s) {
      bool covered = false;
      for (const auto& cc : *cover)
        if (cc.contains(e.code(s))) covered = true;
      EXPECT_EQ(covered, c.contains(s));
    }
  }
  EXPECT_GT(applicable, 20);  // the sweep must actually exercise the theorem
}

}  // namespace
}  // namespace picola
