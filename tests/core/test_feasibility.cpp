#include <gtest/gtest.h>

#include "core/feasibility.h"
#include "core/guide.h"

namespace picola {
namespace {

TEST(CeilLog2, Values) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(9), 4);
}

TEST(CeilLog2, LargeValuesDoNotOverflowTheShift) {
  // Regression (UBSan): with an int accumulator 1 << 31 is UB, reached
  // for any n > 2^30.
  EXPECT_EQ(ceil_log2(1 << 30), 30);
  EXPECT_EQ(ceil_log2((1 << 30) + 1), 31);
  EXPECT_EQ(ceil_log2(0x7FFFFFFF), 31);
}

TEST(NvCompatible, AdversarialDimensionsReturnFalseWithoutOverflow) {
  // Regression (UBSan): adjust_father used to raise the father dimension
  // past 62 on pathological (size, dim) pairs, hitting 1L << 63.  Out-of-
  // range dimensions are incompatible by definition and must exit early.
  EXPECT_FALSE(nv_compatible(2, 100, 2, 1, 1, 4, 16));
  EXPECT_FALSE(nv_compatible(2, 1, 2, 100, 1, 4, 16));
  // A father far too populous for any cube up to nv: the Conditions II
  // growth loop must stop at nv + 1 instead of chasing dc parity.
  EXPECT_FALSE(nv_compatible(1 << 20, 1, 2, 1, 2, 4, 16));
  // Son alone larger than the space.
  EXPECT_FALSE(nv_compatible(1 << 20, 20, 1 << 20, 20, 1 << 20, 4, 16));
}

TEST(NvCompatible, DimensionTheoremRejectsOversizedUnion) {
  // |A| = 4 (dim 2), |B| = 4 (dim 2), disjoint son of size 2 (dim 1):
  // dim(super(A,B)) = 2 + 2 - 1 = 3 <= 3 -> compatible in B^3.
  EXPECT_TRUE(nv_compatible(4, 2, 4, 2, 2, 3, 8));
  // In B^2 it cannot fit.
  EXPECT_FALSE(nv_compatible(4, 2, 4, 2, 2, 2, 4));
}

TEST(NvCompatible, ProperSonForcesStrictlyBiggerFather) {
  // A = {a,b}, B = {b,c}; son {b} has dim 0, fathers need dim >= 1:
  // 1 + 1 - 0 = 2 <= 2 -> compatible at nv=2.
  EXPECT_TRUE(nv_compatible(2, 1, 2, 1, 1, 2, 4));
  // But not at nv = 1.
  EXPECT_FALSE(nv_compatible(2, 1, 2, 1, 1, 1, 2));
}

TEST(NvCompatible, DcConditionRaisesFatherDim) {
  // Son of size 3 needs dim 2, leaving one dc slot; a father of size 5
  // at dim 3 has 3 dc slots (fine), but a father of size 4 with the same
  // son: dim(son)=2 with dc 1 > dc of a dim-2 father (0) -> father forced
  // to dim 3.  Then 3 + 3 - 2 = 4 > 3 -> incompatible in B^3.
  EXPECT_FALSE(nv_compatible(4, 2, 4, 2, 3, 3, 8));
}

TEST(NvCompatible, VoidSonUsesGlobalBudget) {
  // Two disjoint constraints of size 3 (dim 2, dc 1 each) among 8 symbols
  // in B^3: budget = 0 < 2 -> incompatible.
  EXPECT_FALSE(nv_compatible(3, 2, 3, 2, 0, 3, 8));
  // With 6 symbols the budget is 2 -> compatible.
  EXPECT_TRUE(nv_compatible(3, 2, 3, 2, 0, 3, 6));
}

TEST(Classify, StaticBudgetDetectsInfeasibleSize3Constraint) {
  // 4 symbols in B^2 (no unused codes): a 3-member constraint needs a
  // 2-dimensional supercube with one dc slot -> infeasible immediately.
  ConstraintSet cs;
  cs.num_symbols = 4;
  cs.add({0, 1, 2});
  cs.add({0, 1});
  ConstraintMatrix m(cs, 2);
  std::vector<int> bad = classify_infeasible(m);
  EXPECT_EQ(bad, (std::vector<int>{0}));
}

TEST(Classify, SatisfiedConstraintKillsIncompatibleOne) {
  // 8 symbols in B^3 (no unused codes).  Column {0,0,0,0,1,1,1,1}
  // satisfies A = {0,1,2,3} on the face 0--.  B = {3,4,5,6} has a son {3}
  // with A; dim(A) = dim(B) = 2, dim(son) = 0, so
  // dim(super(A,B)) = 2 + 2 - 0 = 4 > 3: B is no longer satisfiable.
  ConstraintSet cs;
  cs.num_symbols = 8;
  cs.add({0, 1, 2, 3});
  cs.add({3, 4, 5, 6});
  ConstraintMatrix m(cs, 3);
  EXPECT_TRUE(classify_infeasible(m).empty());
  m.record_column({0, 0, 0, 0, 1, 1, 1, 1});
  ASSERT_TRUE(m.satisfied(0));
  EXPECT_EQ(classify_infeasible(m), (std::vector<int>{1}));
}

TEST(Classify, FreeColumnsRaiseMinDimIntoInfeasibility) {
  // 8 symbols in B^3, constraint of size 2.  After two free columns its
  // supercube has dim >= 2, i.e. >= 4 codes for 2 members: needs 2 unused
  // codes but the budget is 0 -> infeasible.
  ConstraintSet cs;
  cs.num_symbols = 8;
  cs.add({0, 1});
  ConstraintMatrix m(cs, 3);
  m.record_column({0, 1, 0, 1, 0, 1, 0, 1});  // split
  EXPECT_TRUE(classify_infeasible(m).empty());  // dim>=1: 0 dc needed
  m.record_column({1, 0, 0, 1, 0, 1, 0, 1});  // split again
  EXPECT_EQ(classify_infeasible(m), (std::vector<int>{0}));
}

TEST(Guide, BuildsGuideFromPotentialIntruders) {
  ConstraintSet cs;
  cs.num_symbols = 6;
  cs.add({0, 1, 2});
  ConstraintMatrix m(cs, 3);
  // Column separating symbol 5 only.
  m.record_column({0, 0, 0, 0, 0, 1});
  auto g = make_guide(m, 0);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->members, (std::vector<int>{3, 4}));
  EXPECT_TRUE(g->is_guide);
  EXPECT_EQ(g->origin, 0);
  EXPECT_DOUBLE_EQ(g->weight, 0.75);
}

TEST(Guide, NoGuideForSingleIntruder) {
  ConstraintSet cs;
  cs.num_symbols = 5;
  cs.add({0, 1, 2});
  ConstraintMatrix m(cs, 3);
  m.record_column({0, 0, 0, 0, 1});  // symbol 4 separated; only 3 remains
  EXPECT_FALSE(make_guide(m, 0).has_value());
}

TEST(Guide, GuideOfGuideTracksRootOrigin) {
  ConstraintSet cs;
  cs.num_symbols = 8;
  cs.add({0, 1, 2});
  ConstraintMatrix m(cs, 3);
  auto g = make_guide(m, 0);
  ASSERT_TRUE(g.has_value());
  int gk = m.add_constraint(*g, {});
  auto gg = make_guide(m, gk);
  ASSERT_TRUE(gg.has_value());
  EXPECT_EQ(gg->origin, 0);  // root, not the intermediate guide
  GuideOptions no_rec;
  no_rec.recursive = false;
  EXPECT_FALSE(make_guide(m, gk, no_rec).has_value());
}

}  // namespace
}  // namespace picola
