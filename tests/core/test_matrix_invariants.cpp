// PICOLA bookkeeping invariants: the incremental constraint-matrix state
// must agree with a brute-force recomputation from the generated columns,
// on random constraint systems and random column streams.

#include <gtest/gtest.h>

#include <random>

#include "constraints/constraint_matrix.h"
#include "constraints/dichotomy.h"
#include "core/picola.h"
#include "eval/constraint_eval.h"

namespace picola {
namespace {

class MatrixInvariant : public ::testing::TestWithParam<uint32_t> {};

TEST_P(MatrixInvariant, IncrementalMatchesBruteForce) {
  std::mt19937 rng(GetParam());
  const int n = 4 + static_cast<int>(rng() % 10);
  const int nv = Encoding::min_bits(n) + static_cast<int>(rng() % 2);

  ConstraintSet cs;
  cs.num_symbols = n;
  for (int k = 0; k < 5; ++k) {
    std::vector<int> members;
    for (int s = 0; s < n; ++s)
      if (rng() % 3 == 0) members.push_back(s);
    cs.add(std::move(members));
  }
  if (cs.size() == 0) GTEST_SKIP() << "degenerate draw";

  ConstraintMatrix m(cs, nv);
  std::vector<std::vector<int>> columns;
  for (int col = 0; col < nv; ++col) {
    std::vector<int> bits(static_cast<size_t>(n));
    for (int& b : bits) b = static_cast<int>(rng() % 2);
    m.record_column(bits);
    columns.push_back(bits);

    // Brute force per constraint: pinned/free counts and entries.
    for (int k = 0; k < cs.size(); ++k) {
      const auto& c = cs.constraints[static_cast<size_t>(k)];
      int pinned = 0, free_cols = 0;
      std::vector<int> entry(static_cast<size_t>(n), 0);
      for (int m2 : c.members) entry[static_cast<size_t>(m2)] = -1;
      for (size_t ci = 0; ci < columns.size(); ++ci) {
        const auto& b = columns[ci];
        int v = b[static_cast<size_t>(c.members[0])];
        bool uniform = true;
        for (int m2 : c.members)
          if (b[static_cast<size_t>(m2)] != v) uniform = false;
        if (!uniform) {
          ++free_cols;
          continue;
        }
        ++pinned;
        for (int j = 0; j < n; ++j)
          if (entry[static_cast<size_t>(j)] == 0 &&
              b[static_cast<size_t>(j)] == 1 - v)
            entry[static_cast<size_t>(j)] = static_cast<int>(ci) + 1;
      }
      EXPECT_EQ(m.pinned_columns(k), pinned);
      EXPECT_EQ(m.free_columns(k), free_cols);
      for (int j = 0; j < n; ++j)
        EXPECT_EQ(m.entry(k, j), entry[static_cast<size_t>(j)]);
      bool sat = true;
      for (int j = 0; j < n; ++j)
        if (entry[static_cast<size_t>(j)] == 0) sat = false;
      EXPECT_EQ(m.satisfied(k), sat);
    }
  }

  // After all columns: satisfied(k) must agree with the geometric
  // definition on the resulting encoding (when codes are distinct).
  Encoding e;
  e.num_symbols = n;
  e.num_bits = nv;
  e.codes.assign(static_cast<size_t>(n), 0);
  for (int j = 0; j < n; ++j)
    for (int col = 0; col < nv; ++col)
      e.codes[static_cast<size_t>(j)] |=
          static_cast<uint32_t>(columns[static_cast<size_t>(col)]
                                        [static_cast<size_t>(j)])
          << col;
  if (e.validate() != "") return;  // random columns may collide; skip
  for (int k = 0; k < cs.size(); ++k) {
    EXPECT_EQ(m.satisfied(k),
              constraint_satisfied(cs.constraints[static_cast<size_t>(k)], e))
        << "matrix and geometry disagree on constraint " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixInvariant, ::testing::Range(500u, 540u));

}  // namespace
}  // namespace picola
