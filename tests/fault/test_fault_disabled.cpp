// Compiled with -DPICOLA_FAULT_DISABLED: every PICOLA_FAULT_POINT site
// must collapse to a constant no-fault Action, even while a plan is
// installed — the compile-out switch beats the runtime switch.

#include "fault/fault.h"

#include <gtest/gtest.h>

#include <cerrno>

namespace picola::fault {
namespace {

TEST(FaultDisabled, PointMacroIgnoresInstalledPlans) {
  FaultPlan plan(1);
  plan.add({"p", {Kind::kErrno, EINTR, 0, 0}, 0, 1, 1000});
  ScopedPlan scoped(std::move(plan));
  ASSERT_TRUE(active());  // the runtime switch IS on...
  for (int i = 0; i < 8; ++i) {
    Action a = PICOLA_FAULT_POINT("p");  // ...but the macro is compiled out
    EXPECT_EQ(a.kind, Kind::kNone);
  }
  // No consult ever reached the plan.
  EXPECT_EQ(current()->stats().at("p").calls, 0u);
}

TEST(FaultDisabled, PlanApiStillWorksForDirectUse) {
  // The library itself stays functional (the harness can still build
  // plans); only the injection sites are inert.
  FaultPlan plan = FaultPlan::random(42);
  EXPECT_EQ(plan.schedule_fingerprint(),
            FaultPlan::random(42).schedule_fingerprint());
}

TEST(FaultDisabled, PersistCatalogStaysPure) {
  // The persist-layer catalog (picola_chaos --restart) is plan-building
  // only, so it must keep working — and stay a pure function of the
  // seed — with the injection sites compiled out.  The io shim's sites
  // themselves are proven inert by the whole-tree
  // -DPICOLA_FAULT_DISABLED=ON CI leg, where test_persist drives
  // persist/store.h through the shim with plans installed and nothing
  // fires.
  FaultPlan plan = FaultPlan::random_persist(42);
  EXPECT_EQ(plan.schedule_fingerprint(),
            FaultPlan::random_persist(42).schedule_fingerprint());
  EXPECT_NE(plan.schedule_fingerprint(),
            FaultPlan::random_persist(43).schedule_fingerprint());
}

}  // namespace
}  // namespace picola::fault
