// fault/fault.h — the deterministic fault-injection framework: seeded
// plans are pure functions of (seed, point, call index), the sys shim
// and the service-layer hooks obey injected actions, and none of it
// exists (beyond one relaxed load) when no plan is installed.

#include "fault/fault.h"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/sys.h"
#include "service/result_cache.h"
#include "service/service.h"
#include "service/thread_pool.h"

namespace picola::fault {
namespace {

TEST(FaultPlan, InactiveByDefault) {
  EXPECT_FALSE(active());
  Action a = PICOLA_FAULT_POINT("nowhere");
  EXPECT_EQ(a.kind, Kind::kNone);
  EXPECT_FALSE(a);
}

TEST(FaultPlan, CounterRuleFiresAtExactIndices) {
  FaultPlan plan(1);
  plan.add({"p", {Kind::kErrno, EINTR, 0, 0}, /*after=*/2, /*every=*/3,
            /*max_fires=*/2});
  // Eligible indices: 2, 5 (then the fires cap ends it).
  std::vector<uint64_t> fired;
  for (uint64_t i = 0; i < 12; ++i)
    if (plan.decision("p", i)) fired.push_back(i);
  EXPECT_EQ(fired, (std::vector<uint64_t>{2, 5}));
  // consult() walks the same schedule, one call per index.
  for (uint64_t i = 0; i < 12; ++i) {
    Action want = plan.decision("p", i);
    Action got = plan.consult("p");
    EXPECT_EQ(got.kind, want.kind) << "index " << i;
  }
  auto st = plan.stats();
  EXPECT_EQ(st.at("p").calls, 12u);
  EXPECT_EQ(st.at("p").fires, 2u);
}

TEST(FaultPlan, FirstMatchingRuleWins) {
  FaultPlan plan(1);
  plan.add({"p", {Kind::kErrno, EINTR, 0, 0}, 0, 1, 1});
  plan.add({"p", {Kind::kErrno, EPIPE, 0, 0}, 0, 1, 100});
  EXPECT_EQ(plan.decision("p", 0).error, EINTR);  // first rule
  EXPECT_EQ(plan.decision("p", 1).error, EPIPE);  // first is spent
}

TEST(FaultPlan, ProbabilisticDecisionsAreIndexPure) {
  FaultPlan plan(99);
  Rule r;
  r.point = "p";
  r.action = {Kind::kErrno, EINTR, 0, 0};
  r.probability = 0.5;
  r.max_fires = UINT64_MAX;
  plan.add(r);
  int fires = 0;
  for (uint64_t i = 0; i < 256; ++i) {
    Action first = plan.decision("p", i);
    Action again = plan.decision("p", i);
    EXPECT_EQ(static_cast<bool>(first), static_cast<bool>(again));
    if (first) ++fires;
  }
  // A fair-ish coin: the seeded hash should land well inside (0, 256).
  EXPECT_GT(fires, 64);
  EXPECT_LT(fires, 192);
}

TEST(FaultPlan, CappedProbabilisticRuleRejected) {
  FaultPlan plan(1);
  Rule r;
  r.point = "p";
  r.action = {Kind::kErrno, EINTR, 0, 0};
  r.probability = 0.5;
  r.max_fires = 3;  // would make decisions depend on call history
  EXPECT_THROW(plan.add(r), std::invalid_argument);
}

TEST(FaultPlan, RandomPlansReproducibleFromSeed) {
  for (uint64_t seed : {1ull, 7ull, 12345ull}) {
    FaultPlan a = FaultPlan::random(seed);
    FaultPlan b = FaultPlan::random(seed);
    EXPECT_EQ(a.describe(), b.describe());
    EXPECT_EQ(a.schedule_fingerprint(), b.schedule_fingerprint());
  }
  EXPECT_NE(FaultPlan::random(1).schedule_fingerprint(),
            FaultPlan::random(2).schedule_fingerprint());
}

TEST(PoolFault, TaskExceptionsCountsSubmitAndRawFailures) {
  // No injection involved: the bodies themselves throw.
  obs::MetricsRegistry reg;
  {
    ThreadPool pool(2, 0, &reg);
    auto fut = pool.submit([]() -> int {
      throw std::runtime_error("submit body");
    });
    EXPECT_THROW(fut.get(), std::runtime_error);
    pool.post([]() { throw std::runtime_error("raw body"); });
    pool.wait_idle();
  }
  // Both bodies threw; only the raw one reached the worker's catch.
  EXPECT_EQ(reg.counter_value("pool/task_exceptions"), 2);
  EXPECT_EQ(reg.counter_value("pool/tasks_failed"), 1);
}

// Everything below exercises the injection sites themselves, which a
// PICOLA_FAULT_DISABLED build compiles out (tests/fault/
// test_fault_disabled.cpp covers the inert-macro semantics instead).
#ifndef PICOLA_FAULT_DISABLED

TEST(FaultPlan, ScopedInstallActivatesThePointMacro) {
  FaultPlan plan(1);
  plan.add({"scoped", {Kind::kErrno, EAGAIN, 0, 0}, 0, 1, 1});
  {
    ScopedPlan scoped(std::move(plan));
    EXPECT_TRUE(active());
    Action a = PICOLA_FAULT_POINT("scoped");
    EXPECT_EQ(a.kind, Kind::kErrno);
    EXPECT_EQ(a.error, EAGAIN);
    EXPECT_EQ(PICOLA_FAULT_POINT("scoped").kind, Kind::kNone);  // spent
  }
  EXPECT_FALSE(active());
  EXPECT_EQ(current(), nullptr);
}

TEST(SysShim, InjectedErrnoSkipsTheSyscall) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(::write(fds[1], "hi", 2), 2);

  FaultPlan plan(1);
  plan.add({"net/read", {Kind::kErrno, EINTR, 0, 0}, 0, 1, 1});
  ScopedPlan scoped(std::move(plan));

  char buf[8];
  errno = 0;
  EXPECT_EQ(net::sys::read(fds[0], buf, sizeof buf), -1);
  EXPECT_EQ(errno, EINTR);
  // The data was not consumed: the retry gets all of it.
  EXPECT_EQ(net::sys::read(fds[0], buf, sizeof buf), 2);
  EXPECT_EQ(std::string(buf, 2), "hi");
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(SysShim, ShortReadsReassembleAFrame) {
  // Adversarial I/O for net/frame.h: a 300-byte frame delivered at most
  // 3 bytes per read — the length prefix itself arrives in pieces.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string payload(296, 'q');
  const std::string frame = net::encode_frame(payload);
  ASSERT_EQ(::write(fds[1], frame.data(), frame.size()),
            static_cast<ssize_t>(frame.size()));
  ::close(fds[1]);

  FaultPlan plan(1);
  plan.add({"net/read", {Kind::kShortIo, 0, 3, 0}, 0, 1, 1'000'000});
  ScopedPlan scoped(std::move(plan));

  net::FrameReader reader(1 << 16);
  char buf[4096];
  int reads = 0;
  std::optional<std::string> got;
  for (;;) {
    ssize_t k = net::sys::read(fds[0], buf, sizeof buf);
    if (k <= 0) break;
    ++reads;
    EXPECT_LE(k, 3);
    ASSERT_TRUE(reader.feed(buf, static_cast<size_t>(k)));
    if ((got = reader.next())) break;
  }
  ASSERT_TRUE(got);
  EXPECT_EQ(*got, payload);
  EXPECT_GE(reads, 100);  // genuinely fragmented
  ::close(fds[0]);
}

TEST(SysShim, PartialWritesDeliverTheWholeFrame) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string frame = net::encode_frame(std::string(200, 'w'));

  FaultPlan plan(1);
  plan.add({"net/write", {Kind::kShortIo, 0, 7, 0}, 0, 1, 1'000'000});
  ScopedPlan scoped(std::move(plan));

  // The standard send loop every call site uses: offset + retry.
  size_t off = 0;
  int writes = 0;
  while (off < frame.size()) {
    ssize_t k =
        net::sys::send_nosig(fds[0], frame.data() + off, frame.size() - off);
    ASSERT_GT(k, 0);
    EXPECT_LE(k, 7);
    off += static_cast<size_t>(k);
    ++writes;
  }
  EXPECT_GE(writes, 29);
  ::close(fds[0]);

  std::string got;
  char buf[4096];
  for (;;) {
    ssize_t k = ::read(fds[1], buf, sizeof buf);
    if (k <= 0) break;
    got.append(buf, static_cast<size_t>(k));
  }
  EXPECT_EQ(got, frame);
  ::close(fds[1]);
}

TEST(SysShim, CloseAlwaysReleasesTheDescriptor) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  FaultPlan plan(1);
  plan.add({"net/close", {Kind::kErrno, EINTR, 0, 0}, 0, 1, 1});
  ScopedPlan scoped(std::move(plan));
  errno = 0;
  EXPECT_EQ(net::sys::close(fds[0]), -1);  // injected EINTR reported...
  EXPECT_EQ(errno, EINTR);
  EXPECT_EQ(::close(fds[0]), -1);  // ...but the fd is genuinely gone
  EXPECT_EQ(errno, EBADF);
  ::close(fds[1]);
}

TEST(CacheFault, DroppedInsertIsInvisibleToCorrectness) {
  ResultCache cache(8);
  CanonicalJob job;
  job.set.num_symbols = 4;
  job.set.add({0, 1});
  job.fingerprint = 0xABCD;
  CachedResult result;
  result.total_cubes = 7;

  FaultPlan plan(1);
  plan.add({"cache/insert", {Kind::kFail, 0, 0, 0}, 0, 1, 1});
  ScopedPlan scoped(std::move(plan));

  cache.insert(job, result);  // dropped
  EXPECT_FALSE(cache.lookup(job));
  EXPECT_EQ(cache.stats().insert_drops, 1);
  cache.insert(job, result);  // fires spent: lands
  auto hit = cache.lookup(job);
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->total_cubes, 7);
}

TEST(PoolFault, InjectedThrowNeverOrphansASubmitFuture) {
  obs::MetricsRegistry reg;
  ThreadPool pool(2, 0, &reg);
  FaultPlan plan(1);
  plan.add({"pool/task", {Kind::kThrow, 0, 0, 0}, 0, 1, 1});
  ScopedPlan scoped(std::move(plan));
  // The injection throws AFTER the body: the future must still resolve.
  auto fut = pool.submit([]() { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
  pool.wait_idle();
  EXPECT_EQ(reg.counter_value("pool/tasks_failed"), 1);
}

TEST(ServiceFault, ThrowingRestartFailsOnlyItsOwnJob) {
  ServiceOptions so;
  so.num_threads = 2;
  EncodingService service(so);

  ConstraintSet cs_a;
  cs_a.num_symbols = 6;
  cs_a.add({0, 1, 2});
  cs_a.add({3, 4});
  ConstraintSet cs_b;
  cs_b.num_symbols = 7;
  cs_b.add({1, 2, 3});
  cs_b.add({0, 6});

  FaultPlan plan(1);
  plan.add({"service/restart_task", {Kind::kThrow, 0, 0, 0}, 0, 1, 1});
  ScopedPlan scoped(std::move(plan));

  Job a;
  a.set = cs_a;
  a.restarts = 2;
  auto fut_a = service.submit(std::move(a));
  EXPECT_THROW(fut_a.get(), std::runtime_error);  // one restart was hit

  Job b;  // a different job, after the fires cap: unaffected
  b.set = cs_b;
  b.restarts = 2;
  JobResult rb = service.submit(std::move(b)).get();
  EXPECT_FALSE(rb.picola.encoding.codes.empty());

  Job a2;  // the failed job was not cached; a resubmit recomputes cleanly
  a2.set = cs_a;
  a2.restarts = 2;
  JobResult ra = service.submit(std::move(a2)).get();
  EXPECT_FALSE(ra.picola.encoding.codes.empty());
  EXPECT_FALSE(ra.cache_hit);
}

TEST(ServiceFault, InjectedAllocationFailureIsAnErrorNotACrash) {
  ServiceOptions so;
  so.num_threads = 2;
  EncodingService service(so);
  FaultPlan plan(1);
  plan.add({"service/job_alloc", {Kind::kThrow, 0, 0, 0}, 0, 1, 2});
  ScopedPlan scoped(std::move(plan));
  ConstraintSet cs;
  cs.num_symbols = 5;
  cs.add({0, 1});
  Job j;
  j.set = cs;
  j.restarts = 2;
  auto fut = service.submit(std::move(j));
  EXPECT_THROW(fut.get(), std::bad_alloc);
}

#endif  // PICOLA_FAULT_DISABLED

}  // namespace
}  // namespace picola::fault
