// Cross-checks between independent implementations of the same math:
// heuristic vs exact minimiser on multi-valued spaces, Blake primes vs
// expand-based primality, complement vs cover_sharp from the full space.

#include <gtest/gtest.h>

#include <random>

#include "../test_util.h"
#include "cube/algebra.h"
#include "espresso/exact.h"
#include "espresso/espresso.h"

namespace picola {
namespace {

TEST(CrossCheck, HeuristicVsExactOnMvSpaces) {
  std::mt19937 rng(61);
  CubeSpace s = CubeSpace::multi_valued({2, 4, 3});
  for (int trial = 0; trial < 40; ++trial) {
    Cover f = test::random_cover(s, 4, rng, 0.4);
    Cover d = test::random_cover(s, 1, rng, 0.2);
    f.remove_empty();
    if (f.empty()) continue;
    auto exact = esp::exact_minimize(f, d);
    ASSERT_TRUE(exact.has_value());
    Cover heur = esp::minimize_cover(f, d);
    EXPECT_GE(heur.size(), exact->size());
    // Both implement the same function modulo dc.
    Cover::for_each_minterm(s, [&](const std::vector<int>& mt) {
      if (d.covers_minterm(mt)) return;
      EXPECT_EQ(heur.covers_minterm(mt), f.covers_minterm(mt));
      EXPECT_EQ(exact->covers_minterm(mt), f.covers_minterm(mt));
    });
  }
}

TEST(CrossCheck, ComplementEqualsSharpFromUniverse) {
  std::mt19937 rng(62);
  CubeSpace s = CubeSpace::binary(5);
  for (int trial = 0; trial < 40; ++trial) {
    Cover f = test::random_cover(s, 4, rng);
    Cover comp = esp::complement(f);
    Cover universe(s);
    universe.add(Cube::full(s));
    Cover shrp = cover_sharp(universe, f);
    EXPECT_TRUE(test::same_function(comp, shrp));
  }
}

TEST(CrossCheck, BlakePrimesContainEveryExpandResult) {
  std::mt19937 rng(63);
  CubeSpace s = CubeSpace::binary(4);
  for (int trial = 0; trial < 30; ++trial) {
    Cover f = test::random_cover(s, 4, rng);
    f.remove_empty();
    if (f.empty()) continue;
    Cover primes = esp::all_primes(f, Cover(s));
    Cover r = esp::complement(f);
    Cover expanded = esp::expand(f, r);
    // Every cube EXPAND produces must literally appear among the primes.
    for (const Cube& c : expanded.cubes()) {
      bool found = false;
      for (const Cube& p : primes.cubes())
        if (p == c) found = true;
      EXPECT_TRUE(found) << "expand produced a non-prime";
    }
  }
}

TEST(CrossCheck, MakeDisjointAgreesWithMintermCount) {
  std::mt19937 rng(64);
  CubeSpace s = CubeSpace::multi_valued({3, 2, 3});
  for (int trial = 0; trial < 30; ++trial) {
    Cover f = test::random_cover(s, 4, rng, 0.5);
    Cover d = make_disjoint(f);
    uint64_t sum = 0;
    for (const Cube& c : d.cubes()) sum += c.num_minterms(s);
    EXPECT_EQ(sum, f.count_minterms_exact());
  }
}

TEST(CrossCheck, TautologyMatchesComplementEmptiness) {
  std::mt19937 rng(65);
  CubeSpace s = CubeSpace::binary(6);
  for (int trial = 0; trial < 60; ++trial) {
    Cover f = test::random_cover(s, 2 + static_cast<int>(rng() % 10), rng, 0.6);
    EXPECT_EQ(esp::is_tautology(f), esp::complement(f).empty());
  }
}

}  // namespace
}  // namespace picola
