// Property-based sweeps: minimisation must preserve the function, produce
// implicant covers (disjoint from the off-set), be irredundant, and never
// increase the cube count.

#include <gtest/gtest.h>

#include "../test_util.h"
#include "espresso/espresso.h"

namespace picola {
namespace {

struct RandomCase {
  uint32_t seed;
  int nvars;
  int ncubes;
  int ndc;
};

class MinimizeProperty : public ::testing::TestWithParam<RandomCase> {};

TEST_P(MinimizeProperty, SoundAndIrredundant) {
  const RandomCase& rc = GetParam();
  std::mt19937 rng(rc.seed);
  CubeSpace s = CubeSpace::binary(rc.nvars);
  Cover f = test::random_cover(s, rc.ncubes, rng);
  Cover d = test::random_cover(s, rc.ndc, rng, 0.2);
  f.remove_empty();
  d.remove_empty();

  Cover m = esp::minimize_cover(f, d);

  // 1. No growth.
  Cover fs = f;
  fs.remove_contained();
  EXPECT_LE(m.size(), fs.size());

  // 2. Function preserved modulo dc-set: m covers f\d and m ⊆ f∪d.
  Cover::for_each_minterm(s, [&](const std::vector<int>& mt) {
    bool in_f = f.covers_minterm(mt);
    bool in_d = d.covers_minterm(mt);
    bool in_m = m.covers_minterm(mt);
    if (in_f && !in_d) {
      EXPECT_TRUE(in_m) << "lost onset minterm";
    }
    if (!in_f && !in_d) {
      EXPECT_FALSE(in_m) << "covered offset minterm";
    }
  });

  // 3. Irredundant: no cube may be dropped.
  for (int i = 0; i < m.size(); ++i) {
    Cover rest(s);
    for (int j = 0; j < m.size(); ++j)
      if (j != i) rest.add(m[j]);
    rest.append(d);
    EXPECT_FALSE(esp::cover_contains_cube(rest, m[i]))
        << "cube " << i << " is redundant";
  }

  // 4. Primality: each cube expanded in any direction hits the off-set.
  Cover r = esp::complement_fd(f, d);
  for (const Cube& c : m.cubes()) {
    for (int v = 0; v < s.num_vars(); ++v) {
      for (int p = 0; p < s.parts(v); ++p) {
        if (c.test(s, v, p)) continue;
        Cube raised = c;
        raised.set(s, v, p);
        bool hits_offset = false;
        for (const Cube& rc2 : r.cubes())
          if (raised.distance(rc2, s) == 0) hits_offset = true;
        EXPECT_TRUE(hits_offset) << "cube not prime";
      }
    }
  }
}

std::vector<RandomCase> MakeCases() {
  std::vector<RandomCase> cases;
  uint32_t seed = 1000;
  for (int nvars : {2, 3, 4, 5, 6}) {
    for (int ncubes : {1, 3, 6, 12}) {
      for (int ndc : {0, 2}) {
        cases.push_back({seed++, nvars, ncubes, ndc});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomFunctions, MinimizeProperty,
                         ::testing::ValuesIn(MakeCases()),
                         [](const ::testing::TestParamInfo<RandomCase>& info) {
                           const auto& c = info.param;
                           return "v" + std::to_string(c.nvars) + "_c" +
                                  std::to_string(c.ncubes) + "_d" +
                                  std::to_string(c.ndc) + "_s" +
                                  std::to_string(c.seed);
                         });

class MvMinimizeProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(MvMinimizeProperty, MultiValuedSoundness) {
  std::mt19937 rng(GetParam());
  CubeSpace s = CubeSpace::multi_valued({2, 2, 5, 3});
  Cover f = test::random_cover(s, 5, rng, 0.4);
  Cover d = test::random_cover(s, 1, rng, 0.1);
  Cover m = esp::minimize_cover(f, d);
  Cover::for_each_minterm(s, [&](const std::vector<int>& mt) {
    bool in_f = f.covers_minterm(mt);
    bool in_d = d.covers_minterm(mt);
    bool in_m = m.covers_minterm(mt);
    if (in_f && !in_d) {
      EXPECT_TRUE(in_m);
    }
    if (!in_f && !in_d) {
      EXPECT_FALSE(in_m);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, MvMinimizeProperty,
                         ::testing::Range(2000u, 2030u));

TEST(EquivalentCheck, DetectsEquivalenceAndDifference) {
  CubeSpace s = CubeSpace::binary(3);
  Cover a = test::bcover(s, {"00-", "01-"});
  Cover b = test::bcover(s, {"0--"});
  Cover c = test::bcover(s, {"0-1"});
  EXPECT_TRUE(esp::equivalent(a, b, Cover(s)));
  EXPECT_FALSE(esp::equivalent(a, c, Cover(s)));
  // Equivalence modulo dc: a ≡ c when 0-0 is don't care.
  Cover d = test::bcover(s, {"0-0"});
  EXPECT_TRUE(esp::equivalent(a, c, d));
}

}  // namespace
}  // namespace picola
