#include <gtest/gtest.h>

#include "../test_util.h"
#include "espresso/espresso.h"

namespace picola {
namespace {

using test::bcover;
using test::bcube;

TEST(Expand, RaisesToPrime) {
  CubeSpace s = CubeSpace::binary(3);
  // f = 000 + 001; offset = everything with x0=1 or x1=1.
  Cover f = bcover(s, {"000", "001"});
  Cover r = esp::complement(f);
  Cover e = esp::expand(f, r);
  ASSERT_EQ(e.size(), 1);
  EXPECT_EQ(e[0], bcube(s, "00-"));
}

TEST(Expand, KeepsDisjointFromOffset) {
  CubeSpace s = CubeSpace::binary(4);
  std::mt19937 rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    Cover f = test::random_cover(s, 4, rng);
    f.remove_empty();
    if (f.empty()) continue;
    Cover r = esp::complement(f);
    Cover e = esp::expand(f, r);
    EXPECT_TRUE(esp::disjoint(e, r));
    EXPECT_TRUE(test::same_function(e, f));
  }
}

TEST(Irredundant, DropsRedundantMiddleCube) {
  CubeSpace s = CubeSpace::binary(2);
  // 0- and -1 cover 01; the cube 01 is redundant.
  Cover f = bcover(s, {"0-", "-1", "01"});
  Cover g = esp::irredundant(f, Cover(s));
  EXPECT_EQ(g.size(), 2);
  EXPECT_TRUE(test::same_function(g, f));
}

TEST(Irredundant, UsesDcSet) {
  CubeSpace s = CubeSpace::binary(2);
  Cover f = bcover(s, {"01"});
  Cover d = bcover(s, {"0-"});
  // The only onset cube is covered by the dc-set; dropping it keeps the
  // function (modulo dc) intact.
  Cover g = esp::irredundant(f, d);
  EXPECT_EQ(g.size(), 0);
}

TEST(Reduce, ShrinksOverlappingCube) {
  CubeSpace s = CubeSpace::binary(2);
  // f = {0-, -1}: reducing -1 against 0- leaves 11.
  Cover f = bcover(s, {"0-", "-1"});
  Cover g = esp::reduce(f, Cover(s));
  EXPECT_TRUE(test::same_function(g, f));
  // One of the two cubes must have shrunk to a minterm.
  uint64_t total = 0;
  for (const Cube& c : g.cubes()) total += c.num_minterms(s);
  EXPECT_EQ(total, 3u);  // disjoint after reduction
}

TEST(Essential, IdentifiesEssentialPrime) {
  CubeSpace s = CubeSpace::binary(3);
  // Classic: f = x0'x1' + x1 x2; both primes essential.
  Cover f = bcover(s, {"00-", "-11"});
  auto [ess, rest] = esp::essential_split(f, Cover(s));
  EXPECT_EQ(ess.size(), 2);
  EXPECT_EQ(rest.size(), 0);
}

TEST(Minimize, ClassicTwoCubeResult) {
  CubeSpace s = CubeSpace::binary(3);
  // f = minterms {000, 001, 011, 111}: minimal SOP = 00- + -11 (2 cubes).
  Cover f = bcover(s, {"000", "001", "011", "111"});
  Cover m = esp::minimize_cover(f, Cover(s));
  EXPECT_EQ(m.size(), 2);
  EXPECT_TRUE(test::same_function(m, f));
}

TEST(Minimize, UsesDontCaresToMerge) {
  CubeSpace s = CubeSpace::binary(3);
  // onset {000, 011}, dc {001, 010}: single cube 0-- suffices.
  Cover f = bcover(s, {"000", "011"});
  Cover d = bcover(s, {"001", "010"});
  Cover m = esp::minimize_cover(f, d);
  EXPECT_EQ(m.size(), 1);
  EXPECT_EQ(m[0], bcube(s, "0--"));
}

TEST(Minimize, XorNeedsTwoCubes) {
  CubeSpace s = CubeSpace::binary(2);
  Cover f = bcover(s, {"01", "10"});
  Cover m = esp::minimize_cover(f, Cover(s));
  EXPECT_EQ(m.size(), 2);
  EXPECT_TRUE(test::same_function(m, f));
}

TEST(Minimize, EmptyOnset) {
  CubeSpace s = CubeSpace::binary(3);
  Cover m = esp::minimize_cover(Cover(s), Cover(s));
  EXPECT_TRUE(m.empty());
}

TEST(Minimize, TautologyOnset) {
  CubeSpace s = CubeSpace::binary(3);
  Cover f = bcover(s, {"0--", "1--"});
  Cover m = esp::minimize_cover(f, Cover(s));
  ASSERT_EQ(m.size(), 1);
  EXPECT_EQ(m[0], Cube::full(s));
}

TEST(Minimize, MultiOutputSharing) {
  // Two outputs sharing a product term.  Inputs x0 x1, output var with 2
  // parts.  f0 = x0 x1, f1 = x0 x1  ->  one cube asserting both outputs.
  CubeSpace s = CubeSpace::fsm_layout(2, 0, 2);
  Cover f(s);
  Cube a = Cube::full(s);
  a.set_binary(s, 0, 1);
  a.set_binary(s, 1, 1);
  a.set(s, 2, 1, false);  // assert output 0 only
  f.add(a);
  Cube b = Cube::full(s);
  b.set_binary(s, 0, 1);
  b.set_binary(s, 1, 1);
  b.set(s, 2, 0, false);  // assert output 1 only
  f.add(b);
  Cover m = esp::minimize_cover(f, Cover(s));
  ASSERT_EQ(m.size(), 1);
  EXPECT_TRUE(m[0].var_full(s, 2));
}

TEST(Minimize, MvSymbolicVariable) {
  // One 4-valued symbolic variable; onset = parts {0,1} and {2}; the
  // minimizer should merge {0,1,2} only if the function allows; here
  // keeping two cubes but possibly merging into one literal {0,1,2}.
  CubeSpace s = CubeSpace::multi_valued({4, 2});
  Cover f(s);
  for (int p : {0, 1, 2}) {
    Cube c = Cube::full(s);
    c.clear_var(s, 0);
    c.set(s, 0, p);
    c.set(s, 1, 0, false);  // second var = 1
    f.add(c);
  }
  Cover m = esp::minimize_cover(f, Cover(s));
  ASSERT_EQ(m.size(), 1);
  EXPECT_EQ(m[0].var_popcount(s, 0), 3);
  EXPECT_TRUE(test::same_function(m, f));
}

}  // namespace
}  // namespace picola
