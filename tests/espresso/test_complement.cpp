#include <gtest/gtest.h>

#include "../test_util.h"
#include "espresso/espresso.h"

namespace picola {
namespace {

using test::bcover;
using test::random_cover;

TEST(Complement, EmptyCoverGivesUniverse) {
  CubeSpace s = CubeSpace::binary(3);
  Cover c = esp::complement(Cover(s));
  ASSERT_EQ(c.size(), 1);
  EXPECT_EQ(c[0], Cube::full(s));
}

TEST(Complement, UniverseGivesEmpty) {
  CubeSpace s = CubeSpace::binary(3);
  Cover f(s);
  f.add(Cube::full(s));
  EXPECT_TRUE(esp::complement(f).empty());
}

TEST(Complement, SingleCubeDeMorgan) {
  CubeSpace s = CubeSpace::binary(3);
  Cover f = bcover(s, {"01-"});
  Cover c = esp::complement(f);
  // Complement = x0' + x1  ->  {"1--", "-0-"}
  EXPECT_EQ(c.size(), 2);
  EXPECT_EQ(c.count_minterms_exact(), 6u);
  EXPECT_TRUE(esp::disjoint(f, c));
}

TEST(Complement, SingleMvCube) {
  CubeSpace s = CubeSpace::multi_valued({5});
  Cube c = Cube::zeros(s);
  c.set(s, 0, 1);
  c.set(s, 0, 3);
  Cover f(s);
  f.add(c);
  Cover comp = esp::complement(f);
  EXPECT_EQ(comp.count_minterms_exact(), 3u);
  EXPECT_TRUE(esp::disjoint(f, comp));
}

TEST(Complement, RandomCoversPartitionSpace) {
  std::mt19937 rng(42);
  CubeSpace s = CubeSpace::binary(5);
  for (int trial = 0; trial < 100; ++trial) {
    Cover f = random_cover(s, 1 + static_cast<int>(rng() % 8), rng);
    Cover c = esp::complement(f);
    // Disjoint and jointly exhaustive.
    EXPECT_TRUE(esp::disjoint(f, c)) << f.to_string();
    Cover both = f;
    both.append(c);
    EXPECT_TRUE(esp::is_tautology(both)) << f.to_string();
    EXPECT_EQ(f.count_minterms_exact() + c.count_minterms_exact(),
              s.num_minterms());
  }
}

TEST(Complement, RandomMvCoversPartitionSpace) {
  std::mt19937 rng(7);
  CubeSpace s = CubeSpace::multi_valued({2, 2, 6, 4});
  for (int trial = 0; trial < 60; ++trial) {
    Cover f = random_cover(s, 1 + static_cast<int>(rng() % 6), rng, 0.5);
    Cover c = esp::complement(f);
    EXPECT_TRUE(esp::disjoint(f, c));
    Cover both = f;
    both.append(c);
    EXPECT_TRUE(esp::is_tautology(both));
  }
}

TEST(Complement, ComplementFdAvoidsBothOnsetAndDcset) {
  CubeSpace s = CubeSpace::binary(4);
  std::mt19937 rng(5);
  for (int trial = 0; trial < 40; ++trial) {
    Cover f = random_cover(s, 3, rng);
    Cover d = random_cover(s, 2, rng);
    Cover r = esp::complement_fd(f, d);
    EXPECT_TRUE(esp::disjoint(r, f));
    EXPECT_TRUE(esp::disjoint(r, d));
    Cover all = f;
    all.append(d);
    all.append(r);
    EXPECT_TRUE(esp::is_tautology(all));
  }
}

TEST(Complement, DoubleComplementIsSameFunction) {
  std::mt19937 rng(11);
  CubeSpace s = CubeSpace::binary(5);
  for (int trial = 0; trial < 40; ++trial) {
    Cover f = random_cover(s, 1 + static_cast<int>(rng() % 6), rng);
    Cover cc = esp::complement(esp::complement(f));
    EXPECT_TRUE(test::same_function(f, cc));
  }
}

}  // namespace
}  // namespace picola
