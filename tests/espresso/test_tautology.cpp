#include <gtest/gtest.h>

#include "../test_util.h"
#include "espresso/espresso.h"

namespace picola {
namespace {

using test::bcover;
using test::random_cover;

TEST(Tautology, EmptyCoverIsNotTautology) {
  Cover f(CubeSpace::binary(2));
  EXPECT_FALSE(esp::is_tautology(f));
}

TEST(Tautology, FullCubeIsTautology) {
  CubeSpace s = CubeSpace::binary(3);
  Cover f(s);
  f.add(Cube::full(s));
  EXPECT_TRUE(esp::is_tautology(f));
}

TEST(Tautology, ComplementaryPairIsTautology) {
  CubeSpace s = CubeSpace::binary(3);
  EXPECT_TRUE(esp::is_tautology(bcover(s, {"0--", "1--"})));
}

TEST(Tautology, SingleHalfSpaceIsNot) {
  CubeSpace s = CubeSpace::binary(3);
  EXPECT_FALSE(esp::is_tautology(bcover(s, {"0--"})));
}

TEST(Tautology, XorStyleCoverIsNot) {
  CubeSpace s = CubeSpace::binary(2);
  EXPECT_FALSE(esp::is_tautology(bcover(s, {"01", "10"})));
}

TEST(Tautology, FullDisjointPartition) {
  CubeSpace s = CubeSpace::binary(3);
  EXPECT_TRUE(esp::is_tautology(bcover(s, {"00-", "01-", "1-0", "1-1"})));
}

TEST(Tautology, AlmostFullMissingOneMinterm) {
  CubeSpace s = CubeSpace::binary(3);
  // Everything except 111.
  EXPECT_FALSE(esp::is_tautology(bcover(s, {"0--", "-0-", "--0"})));
  EXPECT_TRUE(esp::is_tautology(bcover(s, {"0--", "-0-", "--0", "111"})));
}

TEST(Tautology, MultiValuedPartition) {
  CubeSpace s = CubeSpace::multi_valued({4});
  Cover f(s);
  for (int p = 0; p < 4; ++p) {
    Cube c = Cube::zeros(s);
    c.set(s, 0, p);
    f.add(c);
  }
  EXPECT_TRUE(esp::is_tautology(f));
  f.cubes().pop_back();
  EXPECT_FALSE(esp::is_tautology(f));
}

TEST(Tautology, MixedBinaryMv) {
  CubeSpace s = CubeSpace::multi_valued({2, 3});
  // (x=0, y in {0,1,2}) + (x=1, y in {0,1}) + (x=1, y=2) = everything
  Cover f(s);
  Cube a = Cube::full(s);
  a.set(s, 0, 1, false);  // x=0
  f.add(a);
  Cube b = Cube::full(s);
  b.set(s, 0, 0, false);  // x=1
  b.set(s, 1, 2, false);  // y in {0,1}
  f.add(b);
  EXPECT_FALSE(esp::is_tautology(f));
  Cube c = Cube::full(s);
  c.set(s, 0, 0, false);
  c.set(s, 1, 0, false);
  c.set(s, 1, 1, false);  // x=1, y=2
  f.add(c);
  EXPECT_TRUE(esp::is_tautology(f));
}

TEST(Tautology, AgreesWithExhaustiveCheckOnRandomCovers) {
  std::mt19937 rng(1234);
  CubeSpace s = CubeSpace::binary(5);
  int taut_count = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Cover f = random_cover(s, 1 + static_cast<int>(rng() % 10), rng, 0.5);
    bool exhaustive = f.count_minterms_exact() == s.num_minterms();
    EXPECT_EQ(esp::is_tautology(f), exhaustive) << f.to_string();
    taut_count += exhaustive;
  }
  // Sanity: the random mix should produce both outcomes.
  EXPECT_GT(taut_count, 0);
  EXPECT_LT(taut_count, 200);
}

TEST(Tautology, AgreesWithExhaustiveOnMvCovers) {
  std::mt19937 rng(99);
  CubeSpace s = CubeSpace::multi_valued({2, 2, 5, 3});
  for (int trial = 0; trial < 100; ++trial) {
    Cover f = random_cover(s, 1 + static_cast<int>(rng() % 8), rng, 0.6);
    bool exhaustive = f.count_minterms_exact() == s.num_minterms();
    EXPECT_EQ(esp::is_tautology(f), exhaustive) << f.to_string();
  }
}

TEST(CoverContains, CubeContainment) {
  CubeSpace s = CubeSpace::binary(3);
  Cover f = bcover(s, {"00-", "01-"});
  EXPECT_TRUE(esp::cover_contains_cube(f, test::bcube(s, "0--")));
  EXPECT_FALSE(esp::cover_contains_cube(f, test::bcube(s, "---")));
  EXPECT_TRUE(esp::cover_contains_cube(f, test::bcube(s, "001")));
  EXPECT_FALSE(esp::cover_contains_cube(f, test::bcube(s, "1--")));
}

}  // namespace
}  // namespace picola
