#include <gtest/gtest.h>

#include <random>

#include "../test_util.h"
#include "espresso/exact.h"
#include "espresso/espresso.h"

namespace picola {
namespace {

using test::bcover;
using test::bcube;

TEST(AllPrimes, SingleCubeIsItsOwnPrime) {
  CubeSpace s = CubeSpace::binary(3);
  Cover f = bcover(s, {"01-"});
  Cover p = esp::all_primes(f, Cover(s));
  ASSERT_EQ(p.size(), 1);
  EXPECT_EQ(p[0], bcube(s, "01-"));
}

TEST(AllPrimes, ConsensusFindsStraddlingPrime) {
  // f = x0'x1 + x0 x1': primes are exactly these two cubes;
  // f = x0'x1' + x0 x1' + x1: consensus gives --' etc.
  CubeSpace s = CubeSpace::binary(2);
  Cover f = bcover(s, {"00", "01", "10"});
  Cover p = esp::all_primes(f, Cover(s));
  // Primes of (minterms 00,01,10) are 0- and -0.
  EXPECT_EQ(p.size(), 2);
  for (const Cube& c : p.cubes()) EXPECT_EQ(c.num_minterms(s), 2u);
}

TEST(AllPrimes, ClassicThreeVariableExample) {
  // f = sum of minterms {000,001,011,111}: primes 00-, 0-1, -11.
  CubeSpace s = CubeSpace::binary(3);
  Cover f = bcover(s, {"000", "001", "011", "111"});
  Cover p = esp::all_primes(f, Cover(s));
  EXPECT_EQ(p.size(), 3);
  EXPECT_TRUE(test::same_function(p, f));
}

TEST(AllPrimes, EveryPrimeIsMaximal) {
  std::mt19937 rng(31);
  CubeSpace s = CubeSpace::binary(4);
  for (int trial = 0; trial < 30; ++trial) {
    Cover f = test::random_cover(s, 4, rng);
    f.remove_empty();
    if (f.empty()) continue;
    Cover p = esp::all_primes(f, Cover(s));
    EXPECT_TRUE(test::same_function(p, f));
    Cover r = esp::complement(f);
    for (const Cube& c : p.cubes()) {
      for (int v = 0; v < s.num_vars(); ++v) {
        for (int part = 0; part < 2; ++part) {
          if (c.test(s, v, part)) continue;
          Cube raised = c;
          raised.set(s, v, part);
          bool hits = false;
          for (const Cube& rc : r.cubes())
            if (raised.distance(rc, s) == 0) hits = true;
          EXPECT_TRUE(hits) << "prime not maximal";
        }
      }
    }
  }
}

TEST(AllPrimes, MultiValuedConsensus) {
  // One 3-valued variable with parts {0},{1},{2} in the onset: the single
  // prime is the full literal.
  CubeSpace s = CubeSpace::multi_valued({3});
  Cover f(s);
  for (int p = 0; p < 3; ++p) {
    Cube c = Cube::zeros(s);
    c.set(s, 0, p);
    f.add(c);
  }
  Cover primes = esp::all_primes(f, Cover(s));
  ASSERT_EQ(primes.size(), 1);
  EXPECT_EQ(primes[0], Cube::full(s));
}

TEST(ExactMinimize, MatchesKnownOptimum) {
  CubeSpace s = CubeSpace::binary(3);
  Cover f = bcover(s, {"000", "001", "011", "111"});
  auto m = esp::exact_minimize(f, Cover(s));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->size(), 2);
  EXPECT_TRUE(test::same_function(*m, f));
}

TEST(ExactMinimize, UsesDontCares) {
  CubeSpace s = CubeSpace::binary(3);
  Cover f = bcover(s, {"000", "011"});
  Cover d = bcover(s, {"001", "010"});
  auto m = esp::exact_minimize(f, d);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->size(), 1);
}

TEST(ExactMinimize, EmptyOnset) {
  CubeSpace s = CubeSpace::binary(3);
  auto m = esp::exact_minimize(Cover(s), Cover(s));
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->empty());
}

TEST(ExactMinimize, HeuristicNeverBeatsExact) {
  std::mt19937 rng(17);
  CubeSpace s = CubeSpace::binary(4);
  int nontrivial = 0;
  for (int trial = 0; trial < 60; ++trial) {
    Cover f = test::random_cover(s, 5, rng);
    Cover d = test::random_cover(s, 1, rng, 0.2);
    f.remove_empty();
    d.remove_empty();
    if (f.empty()) continue;
    auto exact = esp::exact_minimize(f, d);
    ASSERT_TRUE(exact.has_value());
    Cover heur = esp::minimize_cover(f, d);
    EXPECT_GE(heur.size(), exact->size());
    if (exact->size() > 1) ++nontrivial;
    // Exact result must be a correct cover.
    Cover::for_each_minterm(s, [&](const std::vector<int>& mt) {
      bool in_f = f.covers_minterm(mt);
      bool in_d = d.covers_minterm(mt);
      bool in_m = exact->covers_minterm(mt);
      if (in_f && !in_d) {
        EXPECT_TRUE(in_m);
      }
      if (!in_f && !in_d) {
        EXPECT_FALSE(in_m);
      }
    });
  }
  EXPECT_GT(nontrivial, 10);
}

TEST(ExactMinimize, RefusesHugeSpaces) {
  CubeSpace s = CubeSpace::binary(40);
  Cover f(s);
  f.add(Cube::full(s));
  EXPECT_FALSE(esp::exact_minimize(f, Cover(s)).has_value());
}

TEST(LastGasp, NeverWorsensAndKeepsFunction) {
  std::mt19937 rng(23);
  CubeSpace s = CubeSpace::binary(4);
  for (int trial = 0; trial < 30; ++trial) {
    Cover f = test::random_cover(s, 6, rng);
    f.remove_empty();
    if (f.empty()) continue;
    Cover r = esp::complement(f);
    Cover g = esp::last_gasp(f, Cover(s), r);
    EXPECT_LE(g.size(), f.size());
    EXPECT_TRUE(test::same_function(g, f));
  }
}

TEST(ReduceCubeAgainst, FullyCoveredCubeVanishes) {
  CubeSpace s = CubeSpace::binary(2);
  Cover rest = bcover(s, {"--"});
  Cube c = bcube(s, "01");
  EXPECT_TRUE(esp::reduce_cube_against(c, rest).is_empty(s));
}

}  // namespace
}  // namespace picola
