#include <gtest/gtest.h>

#include <random>

#include "kiss/benchmarks.h"
#include "kiss/kiss_io.h"
#include "kiss/minimize_states.h"
#include "kiss/simulator.h"

namespace picola {
namespace {

// Co-simulate two machines on random input sequences; outputs must agree
// wherever both are specified.
std::string cosim(const Fsm& a, const Fsm& b, int steps, uint64_t seed) {
  std::mt19937_64 rng(seed);
  FsmSimulator sa(a), sb(b);
  for (int i = 0; i < steps; ++i) {
    std::vector<int> bits(static_cast<size_t>(a.num_inputs));
    for (int& x : bits) x = static_cast<int>(rng() % 2);
    SimStep ra = sa.step(bits);
    SimStep rb = sb.step(bits);
    if (!ra.matched || !rb.matched) {
      sa.reset();
      sb.reset();
      continue;
    }
    for (int o = 0; o < a.num_outputs; ++o) {
      char x = ra.output[static_cast<size_t>(o)];
      char y = rb.output[static_cast<size_t>(o)];
      if (x != '-' && y != '-' && x != y)
        return "output mismatch at step " + std::to_string(i);
    }
  }
  return "";
}

// A machine with an obviously redundant pair: B and C behave identically.
constexpr const char* kRedundant = R"(.i 1
.o 1
.r A
0 A B 0
1 A C 0
0 B A 1
1 B B 0
0 C A 1
1 C C 0
.e
)";

TEST(MinimizeStates, MergesEquivalentPair) {
  KissParseResult r = parse_kiss(kRedundant);
  ASSERT_TRUE(r.ok());
  StateMinimizeResult m = minimize_states(r.fsm);
  EXPECT_TRUE(m.exact);
  EXPECT_EQ(m.merged, 1);
  EXPECT_EQ(m.fsm.num_states(), 2);
  EXPECT_EQ(m.fsm.validate(), "");
  EXPECT_EQ(cosim(r.fsm, m.fsm, 2000, 5), "");
  // B and C map to the same reduced state.
  EXPECT_EQ(m.state_map[static_cast<size_t>(r.fsm.state_index("B"))],
            m.state_map[static_cast<size_t>(r.fsm.state_index("C"))]);
}

TEST(MinimizeStates, MinimalMachineUntouched) {
  Fsm f = make_example_fsm("vending");
  StateMinimizeResult m = minimize_states(f);
  EXPECT_EQ(m.merged, 0);
  EXPECT_EQ(m.fsm.num_states(), f.num_states());
  EXPECT_EQ(m.note, "machine is already minimal");
}

TEST(MinimizeStates, ChainOfEquivalentStatesCollapses) {
  // Four states, all with identical behaviour.
  Fsm f;
  f.num_inputs = 1;
  f.num_outputs = 1;
  for (int i = 0; i < 4; ++i) f.add_state("q" + std::to_string(i));
  for (int i = 0; i < 4; ++i) {
    f.transitions.push_back({"0", i, (i + 1) % 4, "0"});
    f.transitions.push_back({"1", i, i, "1"});
  }
  StateMinimizeResult m = minimize_states(f);
  EXPECT_TRUE(m.exact);
  EXPECT_EQ(m.fsm.num_states(), 1);
  EXPECT_EQ(cosim(f, m.fsm, 2000, 6), "");
}

TEST(MinimizeStates, DistinguishableByDelayedOutput) {
  // A and B produce the same immediate outputs but diverge one step later.
  Fsm f;
  f.num_inputs = 1;
  f.num_outputs = 1;
  f.add_state("A");
  f.add_state("B");
  f.add_state("X");
  f.add_state("Y");
  f.transitions.push_back({"-", 0, 2, "0"});  // A -> X
  f.transitions.push_back({"-", 1, 3, "0"});  // B -> Y
  f.transitions.push_back({"-", 2, 2, "0"});  // X loops, output 0
  f.transitions.push_back({"-", 3, 3, "1"});  // Y loops, output 1
  StateMinimizeResult m = minimize_states(f);
  // A ≡ X (both emit 0 forever) but B and Y stay distinct from them and
  // from each other: exactly one merge.
  EXPECT_EQ(m.fsm.num_states(), 3);
  EXPECT_EQ(m.state_map[0], m.state_map[2]);  // A with X
  EXPECT_NE(m.state_map[0], m.state_map[1]);  // A and B diverge later
  EXPECT_NE(m.state_map[1], m.state_map[3]);  // B and Y differ immediately
  EXPECT_EQ(cosim(f, m.fsm, 2000, 9), "");
}

TEST(MinimizeStates, NondeterministicMachineRefused) {
  Fsm f;
  f.num_inputs = 1;
  f.num_outputs = 1;
  f.add_state("A");
  f.transitions.push_back({"-", 0, 0, "0"});
  f.transitions.push_back({"0", 0, 0, "1"});  // overlaps
  StateMinimizeResult m = minimize_states(f);
  EXPECT_EQ(m.merged, 0);
  EXPECT_NE(m.note.find("nondeterministic"), std::string::npos);
}

TEST(MinimizeStates, BenchmarksStayEquivalent) {
  for (const char* name : {"lion9", "ex3", "bbara", "dk14", "opus"}) {
    Fsm f = make_benchmark(name);
    StateMinimizeResult m = minimize_states(f);
    EXPECT_EQ(m.fsm.validate(), "") << name;
    EXPECT_EQ(cosim(f, m.fsm, 1500, 7), "") << name;
    EXPECT_LE(m.fsm.num_states(), f.num_states());
  }
}

TEST(MinimizeStates, IncompleteMachineHandledConservatively) {
  // Incompletely specified: compatibility chart may merge, but only clique
  // classes; either way behaviour is preserved where specified.
  KissParseResult r = parse_kiss(
      ".i 1\n.o 1\n.r A\n0 A B 0\n0 B A 1\n1 B B 0\n0 C A 1\n1 C C 0\n.e\n");
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r.fsm.is_complete());
  StateMinimizeResult m = minimize_states(r.fsm);
  EXPECT_FALSE(m.exact);
  EXPECT_EQ(cosim(r.fsm, m.fsm, 2000, 8), "");
}

}  // namespace
}  // namespace picola
