#include <gtest/gtest.h>

#include "kiss/fsm.h"
#include "kiss/kiss_io.h"

namespace picola {
namespace {

constexpr const char* kSmall = R"(.i 2
.o 1
.s 3
.r A
00 A A 0
01 A B 0
1- A C 1
-- B A 1
-- C * -
.e
)";

TEST(KissIo, ParsesSmallMachine) {
  KissParseResult r = parse_kiss(kSmall);
  ASSERT_TRUE(r.ok()) << r.error;
  const Fsm& f = r.fsm;
  EXPECT_EQ(f.num_inputs, 2);
  EXPECT_EQ(f.num_outputs, 1);
  EXPECT_EQ(f.num_states(), 3);
  EXPECT_EQ(f.transitions.size(), 5u);
  EXPECT_EQ(f.reset_state, f.state_index("A"));
  EXPECT_EQ(f.transitions[4].to, Transition::kAnyState);
  EXPECT_EQ(f.transitions[4].output, "-");
  EXPECT_EQ(f.validate(), "");
}

TEST(KissIo, RoundTrip) {
  KissParseResult r1 = parse_kiss(kSmall);
  ASSERT_TRUE(r1.ok());
  std::string text = write_kiss(r1.fsm);
  KissParseResult r2 = parse_kiss(text);
  ASSERT_TRUE(r2.ok()) << r2.error;
  EXPECT_EQ(r2.fsm.num_states(), 3);
  EXPECT_EQ(r2.fsm.transitions.size(), 5u);
  EXPECT_EQ(r2.fsm.state_names, r1.fsm.state_names);
  for (size_t i = 0; i < r1.fsm.transitions.size(); ++i) {
    EXPECT_EQ(r1.fsm.transitions[i].input, r2.fsm.transitions[i].input);
    EXPECT_EQ(r1.fsm.transitions[i].from, r2.fsm.transitions[i].from);
    EXPECT_EQ(r1.fsm.transitions[i].to, r2.fsm.transitions[i].to);
    EXPECT_EQ(r1.fsm.transitions[i].output, r2.fsm.transitions[i].output);
  }
}

TEST(KissIo, RejectsBadRow) {
  EXPECT_FALSE(parse_kiss(".i 2\n.o 1\n00 A B\n.e\n").ok());
  EXPECT_FALSE(parse_kiss("00 A B 1\n").ok());
}

TEST(KissIo, WarnsOnStateCountMismatch) {
  KissParseResult r = parse_kiss(".i 1\n.o 1\n.s 5\n0 A A 1\n.e\n");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.warnings.empty());
}

TEST(KissIo, RejectsUnknownResetState) {
  EXPECT_FALSE(parse_kiss(".i 1\n.o 1\n.r Z\n0 A A 1\n.e\n").ok());
}

TEST(Fsm, StateIndexAndAdd) {
  Fsm f;
  EXPECT_EQ(f.state_index("A"), -1);
  EXPECT_EQ(f.add_state("A"), 0);
  EXPECT_EQ(f.add_state("B"), 1);
  EXPECT_EQ(f.add_state("A"), 0);
  EXPECT_EQ(f.num_states(), 2);
}

TEST(Fsm, DeterminismCheck) {
  KissParseResult r = parse_kiss(kSmall);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.fsm.is_deterministic());
  // Add an overlapping row for state A.
  Transition t;
  t.input = "0-";
  t.from = r.fsm.state_index("A");
  t.to = 0;
  t.output = "0";
  r.fsm.transitions.push_back(t);
  EXPECT_FALSE(r.fsm.is_deterministic());
}

TEST(Fsm, CompletenessCheck) {
  KissParseResult r = parse_kiss(kSmall);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.fsm.is_complete());
  // Remove B's catch-all row: B becomes incompletely specified.
  r.fsm.transitions.erase(r.fsm.transitions.begin() + 3);
  EXPECT_FALSE(r.fsm.is_complete());
}

TEST(Fsm, ValidateCatchesBadIndices) {
  KissParseResult r = parse_kiss(kSmall);
  ASSERT_TRUE(r.ok());
  Fsm f = r.fsm;
  f.transitions[0].to = 99;
  EXPECT_NE(f.validate(), "");
}

}  // namespace
}  // namespace picola
