#include <gtest/gtest.h>

#include "kiss/benchmarks.h"
#include "kiss/simulator.h"

namespace picola {
namespace {

TEST(Simulator, InputMatching) {
  EXPECT_TRUE(FsmSimulator::input_matches("0-1", {0, 1, 1}));
  EXPECT_TRUE(FsmSimulator::input_matches("---", {1, 0, 1}));
  EXPECT_FALSE(FsmSimulator::input_matches("0-1", {1, 1, 1}));
  EXPECT_FALSE(FsmSimulator::input_matches("0-1", {0, 1, 0}));
}

TEST(Simulator, WalksVendingMachine) {
  Fsm f = make_example_fsm("vending");
  FsmSimulator sim(f);
  EXPECT_EQ(sim.state(), f.state_index("C0"));
  // Insert a nickel: C0 -> C5.
  SimStep s = sim.step({1, 0});
  EXPECT_TRUE(s.matched);
  EXPECT_EQ(sim.state(), f.state_index("C5"));
  EXPECT_EQ(s.output, "00");
  // Insert a dime: C5 -> C15.
  s = sim.step({0, 1});
  EXPECT_EQ(sim.state(), f.state_index("C15"));
  // Insert a nickel at 15c: vend, back to C0.
  s = sim.step({1, 0});
  EXPECT_EQ(s.output, "10");
  EXPECT_EQ(sim.state(), f.state_index("C0"));
}

TEST(Simulator, ResetRestoresInitialState) {
  Fsm f = make_example_fsm("traffic");
  FsmSimulator sim(f);
  sim.step({1, 1});
  EXPECT_NE(sim.state(), f.reset_state);
  sim.reset();
  EXPECT_EQ(sim.state(), f.reset_state);
}

TEST(Simulator, UnmatchedInputReportsNoMatch) {
  Fsm f;
  f.num_inputs = 1;
  f.num_outputs = 1;
  f.add_state("A");
  f.transitions.push_back({"1", 0, 0, "1"});
  FsmSimulator sim(f);
  SimStep s = sim.step({0});
  EXPECT_FALSE(s.matched);
  EXPECT_EQ(s.output, "-");
  EXPECT_EQ(sim.state(), 0);
}

TEST(Simulator, StarNextStateKeepsState) {
  Fsm f;
  f.num_inputs = 1;
  f.num_outputs = 1;
  f.add_state("A");
  f.transitions.push_back({"-", 0, Transition::kAnyState, "1"});
  FsmSimulator sim(f);
  SimStep s = sim.step({1});
  EXPECT_TRUE(s.matched);
  EXPECT_TRUE(s.free_next);
  EXPECT_EQ(sim.state(), 0);
}

}  // namespace
}  // namespace picola
