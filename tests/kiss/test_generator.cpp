#include <gtest/gtest.h>

#include "kiss/benchmarks.h"
#include "kiss/generator.h"
#include "kiss/kiss_io.h"

namespace picola {
namespace {

TEST(Generator, Deterministic) {
  GeneratorParams p;
  p.num_inputs = 3;
  p.num_outputs = 2;
  p.num_states = 9;
  p.target_products = 40;
  Fsm a = generate_fsm(p, "x");
  Fsm b = generate_fsm(p, "x");
  EXPECT_EQ(write_kiss(a), write_kiss(b));
  Fsm c = generate_fsm(p, "y");
  EXPECT_NE(write_kiss(a), write_kiss(c));
}

TEST(Generator, MatchesProfileDimensions) {
  GeneratorParams p;
  p.num_inputs = 4;
  p.num_outputs = 3;
  p.num_states = 11;
  p.target_products = 50;
  Fsm f = generate_fsm(p, "profile");
  EXPECT_EQ(f.num_inputs, 4);
  EXPECT_EQ(f.num_outputs, 3);
  EXPECT_EQ(f.num_states(), 11);
  EXPECT_EQ(f.validate(), "");
  // Row budget approximately honoured (within the cluster rounding).
  EXPECT_GE(static_cast<int>(f.transitions.size()), 40);
  EXPECT_LE(static_cast<int>(f.transitions.size()), 70);
}

TEST(Generator, MachinesAreDeterministicAndComplete) {
  GeneratorParams p;
  p.num_inputs = 3;
  p.num_outputs = 2;
  p.num_states = 10;
  p.target_products = 36;
  Fsm f = generate_fsm(p, "dc");
  EXPECT_TRUE(f.is_deterministic());
  EXPECT_TRUE(f.is_complete());
}

TEST(Generator, EveryStateHasRows) {
  GeneratorParams p;
  p.num_inputs = 2;
  p.num_outputs = 1;
  p.num_states = 7;
  p.target_products = 20;
  Fsm f = generate_fsm(p, "rows");
  std::vector<int> count(7, 0);
  for (const auto& t : f.transitions) ++count[static_cast<size_t>(t.from)];
  for (int c : count) EXPECT_GE(c, 1);
}

class BenchmarkSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkSuite, ReconstructsValidMachine) {
  auto profile = find_profile(GetParam());
  ASSERT_TRUE(profile.has_value());
  Fsm f = make_benchmark(GetParam());
  EXPECT_EQ(f.num_inputs, profile->inputs);
  EXPECT_EQ(f.num_outputs, profile->outputs);
  EXPECT_EQ(f.num_states(), profile->states);
  EXPECT_EQ(f.validate(), "");
  EXPECT_TRUE(f.is_deterministic());
  EXPECT_TRUE(f.is_complete());
}

INSTANTIATE_TEST_SUITE_P(
    SmallAndMedium, BenchmarkSuite,
    ::testing::Values("bbara", "dk14", "ex3", "lion9", "train11", "opus",
                      "mark1", "ex2", "donfile", "bbsse", "dk16", "s8",
                      "lion", "train4", "dk27", "mc"));

TEST(Benchmarks, TableListsAreRegistered) {
  for (const auto& name : table1_benchmarks())
    EXPECT_TRUE(find_profile(name).has_value()) << name;
  for (const auto& name : table2_benchmarks())
    EXPECT_TRUE(find_profile(name).has_value()) << name;
  EXPECT_EQ(table1_benchmarks().size(), 31u);
  EXPECT_EQ(table2_benchmarks().size(), 19u);
}

TEST(Benchmarks, UnknownNameThrows) {
  EXPECT_THROW(make_benchmark("nope"), std::out_of_range);
  EXPECT_THROW(make_example_fsm("nope"), std::out_of_range);
}

class ExampleFsms : public ::testing::TestWithParam<std::string> {};

TEST_P(ExampleFsms, HandAuthoredMachinesAreClean) {
  Fsm f = make_example_fsm(GetParam());
  EXPECT_EQ(f.validate(), "");
  EXPECT_TRUE(f.is_deterministic()) << GetParam();
  EXPECT_TRUE(f.is_complete()) << GetParam();
  EXPECT_GE(f.num_states(), 4);
}

INSTANTIATE_TEST_SUITE_P(All, ExampleFsms,
                         ::testing::Values("traffic", "elevator", "vending"));

}  // namespace
}  // namespace picola
