// Regression tests for stdin front-end EOF handling: a final line that
// arrives without a trailing newline (common when the input is piped
// from printf, a file missing its final newline, or a socket) must be
// processed like any other line, in both `picola serve` and the `picola
// batch` list file.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "cli/cli.h"
#include "net/json.h"

namespace picola {
namespace {

std::string example(const std::string& name) {
  return std::string(PICOLA_EXAMPLES_DIR) + "/" + name;
}

int count_lines_starting(const std::string& text, const std::string& prefix) {
  std::istringstream is(text);
  std::string line;
  int n = 0;
  while (std::getline(is, line))
    if (line.rfind(prefix, 0) == 0) ++n;
  return n;
}

TEST(ServeStdinEof, FinalRequestWithoutNewlineIsProcessed) {
  // No trailing '\n' after the last path.
  std::istringstream in(example("overlap.con") + "\n" +
                        example("paper_fig1.con"));
  std::ostringstream out, err;
  ASSERT_EQ(cli::run({"serve"}, in, out, err), 0) << err.str();
  EXPECT_EQ(count_lines_starting(out.str(), "ok "), 2) << out.str();
}

TEST(ServeStdinEof, SingleRequestNoNewline) {
  std::istringstream in(example("overlap.con"));
  std::ostringstream out, err;
  ASSERT_EQ(cli::run({"serve"}, in, out, err), 0);
  EXPECT_EQ(count_lines_starting(out.str(), "ok "), 1) << out.str();
}

TEST(ServeStdinEof, FinalStatsCommandWithoutNewline) {
  std::istringstream in(example("overlap.con") + "\nstats");
  std::ostringstream out, err;
  ASSERT_EQ(cli::run({"serve"}, in, out, err), 0);
  EXPECT_EQ(count_lines_starting(out.str(), "ok "), 1);
  EXPECT_EQ(count_lines_starting(out.str(), "stats "), 1) << out.str();
}

TEST(ServeStdinEof, TrailingWhitespaceOnlyTailIsIgnored) {
  std::istringstream in(example("overlap.con") + "\n   \t ");
  std::ostringstream out, err;
  ASSERT_EQ(cli::run({"serve"}, in, out, err), 0);
  EXPECT_EQ(count_lines_starting(out.str(), "ok "), 1);
  EXPECT_EQ(count_lines_starting(out.str(), "error"), 0) << out.str();
}

TEST(ServeStdinEof, BatchListFileWithoutTrailingNewline) {
  std::string list_path = ::testing::TempDir() + "/picola_eof_list.txt";
  {
    std::ofstream f(list_path, std::ios::binary);
    f << example("overlap.con") << "\n" << example("paper_fig1.con");
    // deliberately no final '\n'
  }
  std::istringstream in;
  std::ostringstream out, err;
  ASSERT_EQ(cli::run({"batch", list_path}, in, out, err), 0) << err.str();
  EXPECT_EQ(count_lines_starting(out.str(), example("overlap.con")), 1);
  EXPECT_EQ(count_lines_starting(out.str(), example("paper_fig1.con")), 1)
      << out.str();
  std::remove(list_path.c_str());
}

// The stdin `metrics` response is a compatibility surface: scripts parse
// it, so the existing key set is locked — new telemetry may add keys but
// never rename or drop these (docs/OBSERVABILITY.md).
TEST(ServeStdinMetrics, ProtocolKeysAreStable) {
  std::istringstream in(example("overlap.con") + "\nmetrics\n");
  std::ostringstream out, err;
  ASSERT_EQ(cli::run({"serve"}, in, out, err), 0) << err.str();

  std::string metrics_line;
  std::istringstream is(out.str());
  std::string line;
  while (std::getline(is, line))
    if (line.rfind("metrics ", 0) == 0) metrics_line = line.substr(8);
  ASSERT_FALSE(metrics_line.empty()) << out.str();

  std::string parse_err;
  auto parsed = net::JsonValue::parse(metrics_line, &parse_err);
  ASSERT_TRUE(parsed) << parse_err;

  // Top-level keys: the original two plus the additive build info.
  const net::JsonValue* service = parsed->find("service");
  ASSERT_TRUE(service);
  ASSERT_TRUE(parsed->find("process"));
  ASSERT_TRUE(parsed->find("build"));

  // The service registry report keeps its shape...
  const net::JsonValue* counters = service->find("counters");
  ASSERT_TRUE(counters);
  ASSERT_TRUE(service->find("gauges"));
  const net::JsonValue* histograms = service->find("histograms");
  ASSERT_TRUE(histograms);
  for (const char* key :
       {"service/jobs_submitted", "service/jobs_completed",
        "service/cache_hits", "service/cache_misses",
        "service/restart_tasks"}) {
    EXPECT_TRUE(counters->find(key)) << key;
  }
  // ...including the locked histogram keys (ns block), with the ms duals
  // riding alongside as additions.
  const net::JsonValue* job = histograms->find("service/job");
  ASSERT_TRUE(job);
  for (const char* key : {"count", "sum_ns", "max_ns", "mean_ns", "p50_ns",
                          "p90_ns", "p95_ns", "p99_ns", "p50_ms"}) {
    EXPECT_TRUE(job->find(key)) << key;
  }
}

}  // namespace
}  // namespace picola
