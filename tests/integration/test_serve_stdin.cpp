// Regression tests for stdin front-end EOF handling: a final line that
// arrives without a trailing newline (common when the input is piped
// from printf, a file missing its final newline, or a socket) must be
// processed like any other line, in both `picola serve` and the `picola
// batch` list file.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "cli/cli.h"

namespace picola {
namespace {

std::string example(const std::string& name) {
  return std::string(PICOLA_EXAMPLES_DIR) + "/" + name;
}

int count_lines_starting(const std::string& text, const std::string& prefix) {
  std::istringstream is(text);
  std::string line;
  int n = 0;
  while (std::getline(is, line))
    if (line.rfind(prefix, 0) == 0) ++n;
  return n;
}

TEST(ServeStdinEof, FinalRequestWithoutNewlineIsProcessed) {
  // No trailing '\n' after the last path.
  std::istringstream in(example("overlap.con") + "\n" +
                        example("paper_fig1.con"));
  std::ostringstream out, err;
  ASSERT_EQ(cli::run({"serve"}, in, out, err), 0) << err.str();
  EXPECT_EQ(count_lines_starting(out.str(), "ok "), 2) << out.str();
}

TEST(ServeStdinEof, SingleRequestNoNewline) {
  std::istringstream in(example("overlap.con"));
  std::ostringstream out, err;
  ASSERT_EQ(cli::run({"serve"}, in, out, err), 0);
  EXPECT_EQ(count_lines_starting(out.str(), "ok "), 1) << out.str();
}

TEST(ServeStdinEof, FinalStatsCommandWithoutNewline) {
  std::istringstream in(example("overlap.con") + "\nstats");
  std::ostringstream out, err;
  ASSERT_EQ(cli::run({"serve"}, in, out, err), 0);
  EXPECT_EQ(count_lines_starting(out.str(), "ok "), 1);
  EXPECT_EQ(count_lines_starting(out.str(), "stats "), 1) << out.str();
}

TEST(ServeStdinEof, TrailingWhitespaceOnlyTailIsIgnored) {
  std::istringstream in(example("overlap.con") + "\n   \t ");
  std::ostringstream out, err;
  ASSERT_EQ(cli::run({"serve"}, in, out, err), 0);
  EXPECT_EQ(count_lines_starting(out.str(), "ok "), 1);
  EXPECT_EQ(count_lines_starting(out.str(), "error"), 0) << out.str();
}

TEST(ServeStdinEof, BatchListFileWithoutTrailingNewline) {
  std::string list_path = ::testing::TempDir() + "/picola_eof_list.txt";
  {
    std::ofstream f(list_path, std::ios::binary);
    f << example("overlap.con") << "\n" << example("paper_fig1.con");
    // deliberately no final '\n'
  }
  std::istringstream in;
  std::ostringstream out, err;
  ASSERT_EQ(cli::run({"batch", list_path}, in, out, err), 0) << err.str();
  EXPECT_EQ(count_lines_starting(out.str(), example("overlap.con")), 1);
  EXPECT_EQ(count_lines_starting(out.str(), example("paper_fig1.con")), 1)
      << out.str();
  std::remove(list_path.c_str());
}

}  // namespace
}  // namespace picola
