// Parser robustness: random byte soup and mutated valid inputs must never
// crash — they either parse or return a diagnostic.

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "constraints/constraint_io.h"
#include "kiss/benchmarks.h"
#include "kiss/kiss_io.h"
#include "pla/mv_pla.h"
#include "pla/pla_io.h"

namespace picola {
namespace {

std::string random_soup(std::mt19937& rng, int len) {
  static const char kAlphabet[] = "01-*.abcdefgh \n\t.ioesrnpmv#|~2";
  std::string s;
  for (int i = 0; i < len; ++i)
    s += kAlphabet[rng() % (sizeof(kAlphabet) - 1)];
  return s;
}

std::string mutate(std::string text, std::mt19937& rng, int edits) {
  for (int i = 0; i < edits && !text.empty(); ++i) {
    size_t pos = rng() % text.size();
    switch (rng() % 3) {
      case 0:
        text[pos] = static_cast<char>(' ' + rng() % 90);
        break;
      case 1:
        text.erase(pos, 1);
        break;
      default:
        text.insert(pos, 1, static_cast<char>(' ' + rng() % 90));
        break;
    }
  }
  return text;
}

TEST(Fuzz, RandomSoupNeverCrashesParsers) {
  std::mt19937 rng(1);
  for (int trial = 0; trial < 300; ++trial) {
    std::string text = random_soup(rng, 1 + static_cast<int>(rng() % 200));
    (void)parse_kiss(text);
    (void)parse_pla(text);
    (void)parse_mv_pla(text);
    (void)parse_constraints(text);
  }
  SUCCEED();
}

TEST(Fuzz, MutatedKissEitherParsesOrErrors) {
  std::mt19937 rng(2);
  std::string base = write_kiss(make_example_fsm("vending"));
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = mutate(base, rng, 1 + static_cast<int>(rng() % 6));
    KissParseResult r = parse_kiss(text);
    if (r.ok()) {
      // Whatever parsed must be structurally valid.
      EXPECT_EQ(r.fsm.validate(), "");
    } else {
      EXPECT_FALSE(r.error.empty());
    }
  }
}

TEST(Fuzz, MutatedPlaEitherParsesOrErrors) {
  std::mt19937 rng(3);
  std::string base = ".i 3\n.o 2\n.type fd\n01- 1-\n1-- 01\n000 10\n.e\n";
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = mutate(base, rng, 1 + static_cast<int>(rng() % 6));
    PlaParseResult r = parse_pla(text);
    if (r.ok()) {
      EXPECT_EQ(r.pla.validate(), "");
    } else {
      EXPECT_FALSE(r.error.empty());
    }
  }
}

TEST(Fuzz, MutatedConstraintsEitherParseOrError) {
  std::mt19937 rng(4);
  std::string base = ".n 8\n0 1 2\n3 4 * 2\n5 6 7\n.e\n";
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = mutate(base, rng, 1 + static_cast<int>(rng() % 6));
    ConstraintParseResult r = parse_constraints(text);
    if (r.ok()) {
      for (const auto& c : r.set.constraints) {
        for (int m : c.members) {
          EXPECT_GE(m, 0);
          EXPECT_LT(m, r.set.num_symbols);
        }
      }
    }
  }
}

TEST(Fuzz, RoundTripStability) {
  // write(parse(write(x))) == write(parse(x)) for every embedded machine.
  for (const auto& name : {"traffic", "elevator", "vending"}) {
    std::string once = write_kiss(make_example_fsm(name));
    KissParseResult r = parse_kiss(once);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(write_kiss(r.fsm), once);
  }
}

}  // namespace
}  // namespace picola
