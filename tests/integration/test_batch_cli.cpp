// End-to-end tests of the `picola batch` / `picola serve` front-ends over
// the shipped example problems (examples/data), in-process via cli::run.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cli/cli.h"
#include "constraints/constraint_io.h"
#include "constraints/derive.h"
#include "core/picola.h"
#include "eval/constraint_eval.h"
#include "kiss/kiss_io.h"

#ifndef PICOLA_EXAMPLES_DIR
#define PICOLA_EXAMPLES_DIR "examples/data"
#endif

namespace picola {
namespace {

namespace fs = std::filesystem;

class BatchCliTest : public ::testing::Test {
 protected:
  static std::vector<std::string> example_files() {
    std::vector<std::string> files;
    for (const auto& entry : fs::directory_iterator(PICOLA_EXAMPLES_DIR)) {
      std::string ext = entry.path().extension().string();
      if (ext == ".con" || ext == ".kiss2")
        files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
  }

  std::string write_list(const std::vector<std::string>& files,
                         const std::string& name) {
    std::string path = testing::TempDir() + "picola_batch_" + name;
    std::ofstream out(path);
    out << "# batch list written by test_batch_cli\n";
    for (const std::string& f : files) out << f << "\n";
    return path;
  }

  int run(std::vector<std::string> args, const std::string& input = "") {
    out_.str("");
    err_.str("");
    std::istringstream in(input);
    return cli::run(args, in, out_, err_);
  }

  /// The deterministic per-file portion of the batch output.
  static std::string result_lines(const std::string& text) {
    std::istringstream is(text);
    std::string line, keep;
    while (std::getline(is, line))
      if (!line.empty() && line[0] != '#') keep += line + "\n";
    return keep;
  }

  std::ostringstream out_, err_;
};

TEST_F(BatchCliTest, ExamplesDirectoryIsPopulated) {
  EXPECT_GE(example_files().size(), 5u) << PICOLA_EXAMPLES_DIR;
}

TEST_F(BatchCliTest, ParallelBatchIsByteIdenticalToSequential) {
  std::string list = write_list(example_files(), "det.list");
  ASSERT_EQ(run({"batch", list, "--jobs", "1", "--restarts", "3"}), 0)
      << err_.str();
  std::string sequential = result_lines(out_.str());
  ASSERT_EQ(run({"batch", list, "--jobs", "4", "--restarts", "3"}), 0)
      << err_.str();
  std::string parallel = result_lines(out_.str());
  EXPECT_FALSE(sequential.empty());
  EXPECT_EQ(sequential, parallel);
}

TEST_F(BatchCliTest, BatchMatchesSequentialLibraryRuns) {
  // Every per-file cube count must equal an independent sequential
  // picola_encode_best run on the same problem.
  const int kRestarts = 3;
  std::vector<std::string> files = example_files();
  std::string list = write_list(files, "lib.list");
  ASSERT_EQ(run({"batch", list, "--jobs", "4", "--restarts", "3"}), 0);
  std::istringstream is(result_lines(out_.str()));
  std::string line;
  size_t checked = 0;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string path, field;
    ls >> path;
    long cubes = -1;
    while (ls >> field)
      if (field.rfind("cubes=", 0) == 0) cubes = std::stol(field.substr(6));
    ASSERT_GE(cubes, 0) << line;

    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    ConstraintSet set;
    if (path.size() > 4 && path.substr(path.size() - 4) == ".con") {
      ConstraintParseResult r = parse_constraints(ss.str());
      ASSERT_TRUE(r.ok()) << path;
      set = r.set;
    } else {
      KissParseResult r = parse_kiss(ss.str());
      ASSERT_TRUE(r.ok()) << path;
      set = derive_face_constraints(r.fsm).set;
    }
    PicolaResult seq = picola_encode_best(set, kRestarts);
    EXPECT_EQ(cubes, evaluate_constraints(set, seq.encoding).total_cubes)
        << path;
    ++checked;
  }
  EXPECT_EQ(checked, files.size());
}

TEST_F(BatchCliTest, BatchJsonEmitsStats) {
  std::string list = write_list(example_files(), "json.list");
  ASSERT_EQ(run({"batch", list, "--jobs", "2", "--json"}), 0);
  const std::string text = out_.str();
  EXPECT_NE(text.find("\"files\":["), std::string::npos) << text;
  EXPECT_NE(text.find("\"total_cubes\":"), std::string::npos);
  EXPECT_NE(text.find("\"cache_misses\":"), std::string::npos);
  EXPECT_NE(text.find("\"queue_high_water\":"), std::string::npos);
}

TEST_F(BatchCliTest, BatchReportsMissingFilesAndFails) {
  std::string list =
      write_list({example_files()[0], "/nonexistent/problem.con"}, "bad.list");
  EXPECT_EQ(run({"batch", list, "--jobs", "2"}), 1);
  EXPECT_NE(out_.str().find("/nonexistent/problem.con error:"),
            std::string::npos)
      << out_.str();
}

TEST_F(BatchCliTest, BatchRejectsBadOptions) {
  std::string list = write_list(example_files(), "opts.list");
  EXPECT_EQ(run({"batch", list, "--jobs", "0"}), 2);
  EXPECT_EQ(run({"batch", list, "--restarts", "frog"}), 2);
  EXPECT_EQ(run({"batch"}), 2);
}

TEST_F(BatchCliTest, ServeAnswersRequestsAndCachesRepeats) {
  std::string con = example_files()[0];
  for (const std::string& f : example_files())
    if (f.size() > 4 && f.substr(f.size() - 4) == ".con") { con = f; break; }
  std::string script = con + "\n" + con + "\nstats\nquit\n";
  ASSERT_EQ(run({"serve", "--restarts", "2"}, script), 0) << err_.str();
  std::istringstream is(out_.str());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(is, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u) << out_.str();
  EXPECT_EQ(lines[0].rfind("ok " + con, 0), 0u) << lines[0];
  EXPECT_NE(lines[0].find("cached=0"), std::string::npos);
  EXPECT_NE(lines[1].find("cached=1"), std::string::npos);
  // Identical encoding fingerprint on the cached answer.
  EXPECT_EQ(lines[0].substr(0, lines[0].find("cached=")),
            lines[1].substr(0, lines[1].find("cached=")));
  EXPECT_EQ(lines[2].rfind("stats ", 0), 0u) << lines[2];
  EXPECT_NE(lines[2].find("cache 1 hit / 1 miss"), std::string::npos);
}

TEST_F(BatchCliTest, ServeReportsErrorsInline) {
  std::string script = "/missing/file.con\nquit\n";
  ASSERT_EQ(run({"serve"}, script), 0);
  EXPECT_EQ(out_.str().rfind("error /missing/file.con", 0), 0u) << out_.str();
}

TEST_F(BatchCliTest, ServeRejectsPositionalArguments) {
  EXPECT_EQ(run({"serve", "stray"}, ""), 2);
}

}  // namespace
}  // namespace picola
