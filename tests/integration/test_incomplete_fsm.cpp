// End-to-end behaviour on incompletely specified machines: unspecified
// inputs, '*' next states and '-' outputs must flow through constraint
// derivation, assembly and verification as don't-cares.

#include <gtest/gtest.h>

#include "constraints/derive.h"
#include "kiss/kiss_io.h"
#include "stateassign/state_assign.h"

namespace picola {
namespace {

// A deliberately nasty little machine: state B has no row for input 11,
// C's successor is unspecified, and several outputs are dc.
constexpr const char* kPartial = R"(.i 2
.o 2
.s 4
.r A
00 A A 00
01 A B 1-
1- A C 01
0- B A -1
10 B D 10
-- C * --
00 D B 0-
-1 D D 11
10 D * 1-
.e
)";

Fsm partial_machine() {
  KissParseResult r = parse_kiss(kPartial);
  EXPECT_TRUE(r.ok()) << r.error;
  return r.fsm;
}

TEST(IncompleteFsm, ParsesWithStarsAndDcOutputs) {
  Fsm f = partial_machine();
  EXPECT_EQ(f.validate(), "");
  EXPECT_FALSE(f.is_complete());
  EXPECT_TRUE(f.is_deterministic());
}

TEST(IncompleteFsm, SymbolicCoverHasDcCubes) {
  Fsm f = partial_machine();
  Cover onset, dc;
  build_symbolic_cover(f, &onset, &dc);
  EXPECT_GT(dc.size(), 0);
  // The '*' row contributes every next-state part as dc.
  const CubeSpace& s = onset.space();
  bool star_dc = false;
  for (const Cube& c : dc.cubes()) {
    bool all_states = true;
    for (int q = 0; q < f.num_states(); ++q)
      if (!c.test(s, s.output_var(), q)) all_states = false;
    star_dc |= all_states;
  }
  EXPECT_TRUE(star_dc);
}

TEST(IncompleteFsm, DerivationStaysEquivalent) {
  Fsm f = partial_machine();
  DerivedConstraints d = derive_face_constraints(f);
  EXPECT_TRUE(esp::equivalent(d.minimized, d.symbolic_onset, d.symbolic_dc));
}

class IncompleteAssign : public ::testing::TestWithParam<Assigner> {};

TEST_P(IncompleteAssign, VerifiedImplementation) {
  Fsm f = partial_machine();
  StateAssignOptions opt;
  opt.assigner = GetParam();
  StateAssignResult r = assign_states(f, opt);
  EXPECT_EQ(r.encoding.validate(), "");
  EXPECT_EQ(
      verify_against_fsm(f, r.encoding, r.minimized, r.encoded_dc, 600, 11),
      "")
      << assigner_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Assigners, IncompleteAssign,
                         ::testing::Values(Assigner::kPicola,
                                           Assigner::kNovaILike,
                                           Assigner::kNovaIoLike,
                                           Assigner::kSequential),
                         [](const ::testing::TestParamInfo<Assigner>& info) {
                           std::string n = assigner_name(info.param);
                           for (char& ch : n)
                             if (!isalnum(static_cast<unsigned char>(ch)))
                               ch = '_';
                           return n;
                         });

TEST(IncompleteFsm, RawTableFlowAlsoVerifies) {
  Fsm f = partial_machine();
  StateAssignOptions opt;
  opt.use_symbolic_cover = false;
  StateAssignResult r = assign_states(f, opt);
  EXPECT_EQ(
      verify_against_fsm(f, r.encoding, r.minimized, r.encoded_dc, 600, 13),
      "");
}

}  // namespace
}  // namespace picola
