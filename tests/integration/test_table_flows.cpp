// Whole-flow invariants on real benchmark problems — the properties that
// make the Table I / Table II numbers meaningful.

#include <gtest/gtest.h>

#include "constraints/derive.h"
#include "constraints/dichotomy.h"
#include "core/picola.h"
#include "encoders/enc_like.h"
#include "encoders/nova_like.h"
#include "encoders/trivial.h"
#include "eval/constraint_eval.h"
#include "kiss/benchmarks.h"
#include "stateassign/state_assign.h"

namespace picola {
namespace {

class Table1Flow : public ::testing::TestWithParam<std::string> {};

TEST_P(Table1Flow, InvariantsHold) {
  Fsm fsm = make_benchmark(GetParam());
  DerivedConstraints d = derive_face_constraints(fsm);
  const ConstraintSet& cs = d.set;

  Encoding pic = picola_encode(cs).encoding;
  Encoding nova = nova_like_encode(cs).encoding;
  Encoding rnd = random_encoding(fsm.num_states(), 4242);

  ASSERT_EQ(pic.validate(), "");
  ASSERT_EQ(nova.validate(), "");
  ConstraintEvalResult ep = evaluate_constraints(cs, pic);
  ConstraintEvalResult en = evaluate_constraints(cs, nova);
  ConstraintEvalResult er = evaluate_constraints(cs, rnd);

  // A satisfied constraint costs exactly one cube; violated ones more.
  for (int k = 0; k < cs.size(); ++k) {
    bool sat = constraint_satisfied(cs.constraints[static_cast<size_t>(k)], pic);
    if (sat) {
      EXPECT_EQ(ep.per_constraint[static_cast<size_t>(k)], 1);
    } else {
      EXPECT_GE(ep.per_constraint[static_cast<size_t>(k)], 2);
    }
  }
  // Total >= number of constraints (each needs at least one cube).
  EXPECT_GE(ep.total_cubes, cs.size());
  // Structured encoders beat the random one on every problem here.
  EXPECT_LE(ep.total_cubes, er.total_cubes);
  EXPECT_LE(en.total_cubes, er.total_cubes);
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, Table1Flow,
                         ::testing::Values("bbara", "dk14", "ex2", "ex3",
                                           "lion9", "opus", "s1", "train11",
                                           "keyb"));

class Table2Flow : public ::testing::TestWithParam<std::string> {};

TEST_P(Table2Flow, ImplementationsVerifyAcrossAssigners) {
  Fsm fsm = make_benchmark(GetParam());
  for (Assigner a : {Assigner::kPicola, Assigner::kNovaILike}) {
    StateAssignOptions opt;
    opt.assigner = a;
    StateAssignResult r = assign_states(fsm, opt);
    EXPECT_EQ(r.encoding.validate(), "");
    EXPECT_GE(r.product_terms, 1);
    EXPECT_EQ(verify_against_fsm(fsm, r.encoding, r.minimized, r.encoded_dc,
                                 300, 17),
              "")
        << GetParam() << " / " << assigner_name(a);
  }
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, Table2Flow,
                         ::testing::Values("ex2", "dk16", "donfile", "s1",
                                           "tma"));

TEST(Table1Flow, PaperHeadlineShapeOnSubset) {
  // Locked-in regression of the reproduction's headline: over this fixed
  // subset PICOLA must stay at least as good as NOVA-like in total.
  const std::vector<std::string> subset = {"bbara", "kirkman", "keyb",
                                           "s820",  "s832",    "tbk"};
  long pic = 0, nova = 0;
  for (const auto& name : subset) {
    DerivedConstraints d = derive_face_constraints(make_benchmark(name));
    pic += evaluate_constraints(d.set, picola_encode(d.set).encoding)
               .total_cubes;
    nova += evaluate_constraints(d.set, nova_like_encode(d.set).encoding)
                .total_cubes;
  }
  EXPECT_LE(pic, nova);
}

}  // namespace
}  // namespace picola
