// End-to-end tests of the observability front-ends: `--trace` Chrome
// trace export, `--metrics` reports, `encode --stats-json`, and the
// `metrics` command in `picola serve` — all in-process via cli::run.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cli/cli.h"

#ifndef PICOLA_EXAMPLES_DIR
#define PICOLA_EXAMPLES_DIR "examples/data"
#endif

namespace picola {
namespace {

namespace fs = std::filesystem;

/// Minimal recursive-descent JSON checker — enough to assert the CLI
/// emits well-formed documents without pulling in a JSON library.
class JsonChecker {
 public:
  static bool valid(const std::string& text) {
    JsonChecker c(text);
    c.skip_ws();
    if (!c.value()) return false;
    c.skip_ws();
    return c.pos_ == text.size();
  }

 private:
  explicit JsonChecker(const std::string& t) : t_(t) {}

  bool value() {
    if (pos_ >= t_.size()) return false;
    switch (t_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < t_.size() && t_[pos_] != '"') {
      if (t_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= t_.size()) return false;
    ++pos_;  // closing '"'
    return true;
  }

  bool number() {
    size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < t_.size() &&
           (std::isdigit(static_cast<unsigned char>(t_[pos_])) ||
            t_[pos_] == '.' || t_[pos_] == 'e' || t_[pos_] == 'E' ||
            t_[pos_] == '+' || t_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }

  bool literal(const char* word) {
    size_t n = std::string(word).size();
    if (t_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  char peek() const { return pos_ < t_.size() ? t_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < t_.size() &&
           std::isspace(static_cast<unsigned char>(t_[pos_])))
      ++pos_;
  }

  const std::string& t_;
  size_t pos_ = 0;
};

class ObsCliTest : public ::testing::Test {
 protected:
  static std::vector<std::string> example_files() {
    std::vector<std::string> files;
    for (const auto& entry : fs::directory_iterator(PICOLA_EXAMPLES_DIR)) {
      std::string ext = entry.path().extension().string();
      if (ext == ".con" || ext == ".kiss2")
        files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
  }

  static std::string first_con_file() {
    for (const std::string& f : example_files())
      if (f.size() > 4 && f.substr(f.size() - 4) == ".con") return f;
    return example_files().front();
  }

  std::string write_list(const std::string& name) {
    std::string path = testing::TempDir() + "picola_obs_" + name;
    std::ofstream out(path);
    for (const std::string& f : example_files()) out << f << "\n";
    return path;
  }

  std::string temp_path(const std::string& name) {
    return testing::TempDir() + "picola_obs_" + name;
  }

  int run(std::vector<std::string> args, const std::string& input = "") {
    out_.str("");
    err_.str("");
    std::istringstream in(input);
    return cli::run(args, in, out_, err_);
  }

  static std::string read_file(const std::string& path) {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  static std::string result_lines(const std::string& text) {
    std::istringstream is(text);
    std::string line, keep;
    while (std::getline(is, line))
      if (!line.empty() && line[0] != '#') keep += line + "\n";
    return keep;
  }

  std::ostringstream out_, err_;
};

TEST_F(ObsCliTest, JsonCheckerSanity) {
  EXPECT_TRUE(JsonChecker::valid("{\"a\":[1,2.5,\"x\"],\"b\":null}"));
  EXPECT_TRUE(JsonChecker::valid("[]"));
  EXPECT_FALSE(JsonChecker::valid("{\"a\":}"));
  EXPECT_FALSE(JsonChecker::valid("{\"a\":1} trailing"));
  EXPECT_FALSE(JsonChecker::valid("[1,2"));
}

TEST_F(ObsCliTest, BatchTraceEmitsValidChromeTraceAcrossLayers) {
  std::string list = write_list("trace.list");
  std::string trace = temp_path("trace.json");
  ASSERT_EQ(run({"batch", list, "--jobs", "2", "--trace", trace}), 0)
      << err_.str();
  std::string text = read_file(trace);
  ASSERT_FALSE(text.empty()) << trace;
  EXPECT_TRUE(JsonChecker::valid(text)) << text.substr(0, 400);
  EXPECT_NE(text.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
#ifndef PICOLA_OBS_DISABLED
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  // Spans from the core, the service, and the cache all land in one file.
  EXPECT_NE(text.find("\"name\":\"picola/encode\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"picola/classify\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"service/job\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"service/restart_task\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"cache/lookup\""), std::string::npos);
  EXPECT_NE(text.find("\"cat\":\"picola\""), std::string::npos);
#endif
}

TEST_F(ObsCliTest, BatchMetricsPrintsPerPhaseAndServiceReports) {
  std::string list = write_list("metrics.list");
  ASSERT_EQ(run({"batch", list, "--jobs", "2", "--metrics"}), 0)
      << err_.str();
  std::string text = out_.str();
  EXPECT_NE(text.find("# metrics (per-phase, process-wide):"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# metrics (this service):"), std::string::npos);
#ifndef PICOLA_OBS_DISABLED
  // The process-wide per-phase histograms need the macros compiled in.
  EXPECT_NE(text.find("# picola/encode count="), std::string::npos);
  EXPECT_NE(text.find("# espresso/eval count="), std::string::npos);
#endif
  // Service bookkeeping bypasses the macros and is always present.
  EXPECT_NE(text.find("# service/jobs_submitted count="), std::string::npos);
  EXPECT_NE(text.find("p99_ms="), std::string::npos);
}

TEST_F(ObsCliTest, BatchJsonMetricsStaysValidJson) {
  std::string list = write_list("jm.list");
  ASSERT_EQ(run({"batch", list, "--jobs", "2", "--json", "--metrics"}), 0)
      << err_.str();
  std::string text = out_.str();
  // Strip the trailing newline; the payload must be one JSON document.
  while (!text.empty() && text.back() == '\n') text.pop_back();
  EXPECT_TRUE(JsonChecker::valid(text)) << text.substr(0, 400);
  EXPECT_NE(text.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(text.find("\"service_metrics\":{"), std::string::npos);
#ifndef PICOLA_OBS_DISABLED
  EXPECT_NE(text.find("\"picola/encode\":{\"count\":"), std::string::npos);
#endif
}

TEST_F(ObsCliTest, EncodeStatsJsonEmitsTimedPhaseBreakdown) {
  std::string con = first_con_file();
  ASSERT_EQ(run({"encode", con, "--algorithm", "picola", "--stats-json"}), 0)
      << err_.str();
  std::istringstream is(out_.str());
  std::string line, json;
  while (std::getline(is, line))
    if (!line.empty() && line[0] == '{') json = line;
  ASSERT_FALSE(json.empty()) << out_.str();
  EXPECT_TRUE(JsonChecker::valid(json)) << json;
  EXPECT_NE(json.find("\"classify_calls\":"), std::string::npos);
  EXPECT_NE(json.find("\"classify_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"column_ms\":["), std::string::npos);
  // Classify-call counts are plain bookkeeping, filled in every build.
  EXPECT_EQ(json.find("\"classify_calls\":0,"), std::string::npos) << json;
#ifndef PICOLA_OBS_DISABLED
  // The obs session is live during --stats-json, so per-column timings
  // are real (non-empty) when the spans are compiled in.
  EXPECT_EQ(json.find("\"column_ms\":[]"), std::string::npos) << json;
#endif
}

TEST_F(ObsCliTest, EncodeStatsJsonNeedsPicolaAlgorithm) {
  std::string con = first_con_file();
  EXPECT_EQ(run({"encode", con, "--algorithm", "exact", "--stats-json"}), 2);
}

TEST_F(ObsCliTest, ServeMetricsCommandAnswersWithJson) {
  std::string con = first_con_file();
  std::string script = con + "\nmetrics\nquit\n";
  ASSERT_EQ(run({"serve", "--restarts", "2"}, script), 0) << err_.str();
  std::istringstream is(out_.str());
  std::string line, metrics_line;
  while (std::getline(is, line))
    if (line.rfind("metrics ", 0) == 0) metrics_line = line;
  ASSERT_FALSE(metrics_line.empty()) << out_.str();
  std::string json = metrics_line.substr(std::string("metrics ").size());
  EXPECT_TRUE(JsonChecker::valid(json)) << json;
  EXPECT_NE(json.find("\"service\":{"), std::string::npos);
  EXPECT_NE(json.find("\"process\":{"), std::string::npos);
  EXPECT_NE(json.find("\"service/jobs_submitted\":1"), std::string::npos)
      << json;
}

TEST_F(ObsCliTest, TracingDoesNotPerturbResults) {
  std::string list = write_list("det.list");
  std::string trace = temp_path("det_trace.json");
  ASSERT_EQ(run({"batch", list, "--jobs", "2", "--restarts", "2"}), 0);
  std::string plain = result_lines(out_.str());
  ASSERT_EQ(run({"batch", list, "--jobs", "2", "--restarts", "2", "--trace",
                 trace, "--metrics"}),
            0);
  std::string traced = result_lines(out_.str());
  EXPECT_FALSE(plain.empty());
  EXPECT_EQ(plain, traced);
}

}  // namespace
}  // namespace picola
