// The self_check option across the concurrent service: parallel restart
// fan-out with the verifier on must restart-for-restart reproduce the
// sequential picola_encode_best result, and the option participates in
// job canonicalisation.

#include <gtest/gtest.h>

#include "service/job.h"
#include "service/service.h"

namespace picola {
namespace {

ConstraintSet paper_constraints() {
  ConstraintSet cs;
  cs.num_symbols = 15;
  cs.add({1, 5, 7, 13});
  cs.add({0, 1});
  cs.add({8, 13});
  cs.add({5, 6, 7, 8, 13});
  return cs;
}

TEST(ServiceSelfCheck, ParallelRestartsBitIdenticalToSequential) {
  ConstraintSet cs = paper_constraints();
  PicolaOptions opt;
  opt.self_check = true;
  const int restarts = 8;
  PicolaResult sequential = picola_encode_best(cs, restarts, opt);

  ServiceOptions so;
  so.num_threads = 4;
  EncodingService service(so);
  Job job;
  job.set = cs;
  job.options = opt;
  job.restarts = restarts;
  JobResult r = service.submit(std::move(job)).get();
  EXPECT_EQ(r.picola.encoding.codes, sequential.encoding.codes);
}

TEST(ServiceSelfCheck, OptionChangesFingerprint) {
  Job plain;
  plain.set = paper_constraints();
  Job checked = plain;
  checked.options.self_check = true;
  EXPECT_NE(canonicalize(plain).fingerprint,
            canonicalize(checked).fingerprint);
  EXPECT_FALSE(canonicalize(plain).equivalent(canonicalize(checked)));
}

TEST(ServiceSelfCheck, BatchOfGeneratedJobsSurvivesVerifier) {
  // A handful of differently-shaped jobs with self_check on: none may
  // trip the verifier, across threads.
  ServiceOptions so;
  so.num_threads = 4;
  EncodingService service(so);
  std::vector<Job> jobs;
  for (int n = 4; n <= 12; ++n) {
    Job job;
    job.set.num_symbols = n;
    job.set.add({0, 1});
    job.set.add({1, 2, 3});
    if (n >= 6) job.set.add({n - 2, n - 1});
    job.options.self_check = true;
    job.restarts = 3;
    jobs.push_back(std::move(job));
  }
  auto futures = service.submit_batch(std::move(jobs));
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
}

}  // namespace
}  // namespace picola
