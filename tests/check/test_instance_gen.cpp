#include <gtest/gtest.h>

#include <set>

#include "check/instance_gen.h"

namespace picola {
namespace {

TEST(InstanceGen, DeterministicStream) {
  check::InstanceGenerator a(42);
  check::InstanceGenerator b(42);
  for (int i = 0; i < 64; ++i) {
    auto x = a.next();
    auto y = b.next();
    EXPECT_EQ(x.family, y.family) << "iteration " << i;
    EXPECT_EQ(x.num_bits, y.num_bits) << "iteration " << i;
    EXPECT_EQ(x.set.to_string(), y.set.to_string()) << "iteration " << i;
  }
}

TEST(InstanceGen, SeedsDiverge) {
  check::InstanceGenerator a(1);
  check::InstanceGenerator b(2);
  bool differ = false;
  for (int i = 0; i < 16 && !differ; ++i)
    differ = a.next().set.to_string() != b.next().set.to_string();
  EXPECT_TRUE(differ);
}

TEST(InstanceGen, EveryInstanceIsWellFormed) {
  check::GeneratorOptions opt;
  check::InstanceGenerator gen(7, opt);
  for (int i = 0; i < 400; ++i) {
    auto inst = gen.next();
    EXPECT_EQ(inst.set.validate(), "")
        << inst.family << " instance " << i << ":\n" << inst.set.to_string();
    EXPECT_GE(inst.set.size(), 1);
    EXPECT_GE(inst.set.num_symbols, opt.min_symbols);
    EXPECT_LE(inst.set.num_symbols, opt.max_symbols);
    EXPECT_LE(inst.set.size(), opt.max_constraints);
  }
}

TEST(InstanceGen, CyclesThroughAllFamilies) {
  check::InstanceGenerator gen(3);
  std::set<std::string> families;
  for (int i = 0; i < 8; ++i) families.insert(gen.next().family);
  EXPECT_EQ(families,
            (std::set<std::string>{"random", "nested", "packing", "overlap"}));
}

TEST(InstanceGen, RespectsSymbolBounds) {
  check::GeneratorOptions opt;
  opt.min_symbols = 4;
  opt.max_symbols = 8;
  opt.max_extra_bits = 0;
  check::InstanceGenerator gen(11, opt);
  for (int i = 0; i < 100; ++i) {
    auto inst = gen.next();
    EXPECT_GE(inst.set.num_symbols, 4);
    EXPECT_LE(inst.set.num_symbols, 8);
    EXPECT_EQ(inst.num_bits, 0) << "no extra bits requested";
  }
}

}  // namespace
}  // namespace picola
