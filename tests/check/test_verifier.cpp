#include <gtest/gtest.h>

#include "check/verifier.h"
#include "core/picola.h"
#include "obs/metrics.h"

namespace picola {
namespace {

ConstraintSet paper_constraints() {
  ConstraintSet cs;
  cs.num_symbols = 15;
  cs.add({1, 5, 7, 13});
  cs.add({0, 1});
  cs.add({8, 13});
  cs.add({5, 6, 7, 8, 13});
  return cs;
}

TEST(Verifier, CleanEncodingPasses) {
  ConstraintSet cs = paper_constraints();
  PicolaResult r = picola_encode(cs);
  check::VerifyReport rep = check::verify_encoding(cs, r.encoding);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(Verifier, SelfCheckOptionIsBehaviourPreserving) {
  ConstraintSet cs = paper_constraints();
  PicolaOptions off;
  PicolaOptions on;
  on.self_check = true;
  Encoding plain = picola_encode(cs, off).encoding;
  Encoding checked;
  EXPECT_NO_THROW(checked = picola_encode(cs, on).encoding);
  EXPECT_EQ(plain.codes, checked.codes);
}

TEST(Verifier, RejectsDuplicateCodes) {
  ConstraintSet cs;
  cs.num_symbols = 3;
  cs.add({0, 1});
  Encoding enc;
  enc.num_symbols = 3;
  enc.num_bits = 2;
  enc.codes = {0, 1, 1};
  check::VerifyReport rep = check::verify_encoding(cs, enc);
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.to_string().find("encoding"), std::string::npos);
}

TEST(Verifier, RejectsMalformedConstraintSet) {
  ConstraintSet cs;
  cs.num_symbols = 3;
  FaceConstraint c;
  c.members = {1, 0};  // unsorted: bypassed add()
  cs.constraints.push_back(c);
  Encoding enc;
  enc.num_symbols = 3;
  enc.num_bits = 2;
  enc.codes = {0, 1, 2};
  EXPECT_FALSE(check::verify_encoding(cs, enc).ok());
}

TEST(Verifier, ColumnCapacityViolationDetected) {
  // 8 symbols all keeping bit 1 in column 0 of B^3: the single prefix
  // group puts 8 on one side of a capacity-4 split.
  std::vector<int> bits(8, 1);
  std::vector<uint32_t> prefixes(8, 0);
  check::VerifyReport rep = check::verify_column(bits, prefixes, 0, 3);
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.to_string().find("capacity"), std::string::npos);
}

TEST(Verifier, BalancedColumnPasses) {
  std::vector<int> bits = {0, 0, 0, 0, 1, 1, 1, 1};
  std::vector<uint32_t> prefixes(8, 0);
  EXPECT_TRUE(check::verify_column(bits, prefixes, 0, 3).ok());
}

TEST(Verifier, NonBinaryBitDetected) {
  std::vector<int> bits = {0, 2};
  std::vector<uint32_t> prefixes(2, 0);
  EXPECT_FALSE(check::verify_column(bits, prefixes, 0, 1).ok());
}

TEST(Verifier, RunReplayCatchesMismatchedEncoding) {
  // Record the columns of one encoding into the matrix, then hand the
  // verifier a different encoding: the replayed entries cannot match.
  ConstraintSet cs;
  cs.num_symbols = 4;
  cs.add({0, 1});
  ConstraintMatrix m(cs, 2);
  m.record_column({0, 0, 1, 1});
  m.record_column({0, 1, 0, 1});
  Encoding other;
  other.num_symbols = 4;
  other.num_bits = 2;
  other.codes = {3, 2, 1, 0};
  EXPECT_FALSE(check::verify_run(cs, m, other).ok());
}

TEST(Verifier, RunReplayPassesOnMatchingState) {
  ConstraintSet cs;
  cs.num_symbols = 4;
  cs.add({0, 1});
  ConstraintMatrix m(cs, 2);
  m.record_column({0, 0, 1, 1});
  m.record_column({0, 1, 0, 1});
  Encoding enc;
  enc.num_symbols = 4;
  enc.num_bits = 2;
  enc.codes = {0, 2, 1, 3};  // LSB-first: column 0 = 0,0,1,1
  check::VerifyReport rep = check::verify_run(cs, m, enc);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(Verifier, EnforceThrowsAndCounts) {
  auto& reg = obs::MetricsRegistry::global();
  uint64_t before = reg.counter("check/violations").value();
  check::VerifyReport rep;
  rep.add("synthetic violation");
  EXPECT_THROW(check::enforce(rep, "test_phase"), check::SelfCheckError);
  EXPECT_EQ(reg.counter("check/violations").value(), before + 1);
  EXPECT_GE(reg.counter("check/test_phase_violations").value(), uint64_t{1});
  EXPECT_NO_THROW(check::enforce(check::VerifyReport{}, "test_phase"));
}

}  // namespace
}  // namespace picola
