#include <gtest/gtest.h>

#include <stdexcept>

#include "check/oracle.h"
#include "constraints/dichotomy.h"
#include "core/picola.h"

namespace picola {
namespace {

TEST(Oracle, PinnedEnumerationCountsCandidates) {
  ConstraintSet cs;
  cs.num_symbols = 4;
  cs.add({0, 1});
  check::OracleResult r = check::oracle_solve(cs, 2);
  // Symbol 0 pinned to code 0: 3! placements of the rest.
  EXPECT_EQ(r.candidates, 6);
  EXPECT_EQ(r.satisfiable_mask, 1u);
  EXPECT_EQ(r.max_satisfied, 1);
}

TEST(Oracle, FullCoverConstraintUnsatisfiable) {
  // {0,1,2} among 4 symbols in B^2: the members' supercube is the whole
  // space and symbol 3 always intrudes.
  ConstraintSet cs;
  cs.num_symbols = 4;
  cs.add({0, 1, 2});
  check::OracleResult r = check::oracle_solve(cs, 2);
  EXPECT_EQ(r.satisfiable_mask, 0u);
  EXPECT_EQ(r.max_satisfied, 0);
}

TEST(Oracle, CornerDegreeLimitsSimultaneousPairs) {
  // In B^2 symbol 0 has only two neighbours, so of the three pair
  // constraints through 0 any two — but never all three — can hold.
  ConstraintSet cs;
  cs.num_symbols = 4;
  cs.add({0, 1});
  cs.add({0, 2});
  cs.add({0, 3});
  check::OracleResult r = check::oracle_solve(cs, 2);
  EXPECT_EQ(r.satisfiable_mask, 7u);
  EXPECT_EQ(r.max_satisfied, 2);
}

TEST(Oracle, MinCubesOnSatisfiablePair) {
  ConstraintSet cs;
  cs.num_symbols = 4;
  cs.add({0, 1});
  check::OracleOptions opt;
  opt.min_cubes = true;
  check::OracleResult r = check::oracle_solve(cs, 2, opt);
  EXPECT_EQ(r.min_total_cubes, 1);
}

TEST(Oracle, RefusesOversizedSearchSpace) {
  ConstraintSet cs;
  cs.num_symbols = 20;
  cs.add({0, 1});
  EXPECT_THROW(check::oracle_solve(cs), std::invalid_argument);
}

TEST(Oracle, EncoderNeverBeatsOracleOnPaperFamilies) {
  // picola is a heuristic: on every small instance its satisfied count
  // is bounded by the oracle optimum and everything it satisfies is
  // individually satisfiable.
  ConstraintSet cs;
  cs.num_symbols = 7;
  cs.add({0, 1, 2});
  cs.add({2, 3});
  cs.add({4, 5, 6});
  check::OracleResult oracle = check::oracle_solve(cs);
  PicolaResult r = picola_encode(cs);
  int satisfied = 0;
  for (int k = 0; k < cs.size(); ++k)
    if (constraint_satisfied(cs.constraints[static_cast<size_t>(k)],
                             r.encoding)) {
      ++satisfied;
      EXPECT_TRUE(oracle.satisfiable_mask >> k & 1) << "constraint " << k;
    }
  EXPECT_LE(satisfied, oracle.max_satisfied);
}

TEST(SatisfiableWithPrefix, NoFixedColumnsMatchesOracle) {
  ConstraintSet cs;
  cs.num_symbols = 4;
  cs.add({0, 1, 2});
  cs.add({0, 1});
  check::OracleResult oracle = check::oracle_solve(cs, 2);
  std::vector<uint32_t> prefixes(4, 0);
  for (int k = 0; k < cs.size(); ++k)
    EXPECT_EQ(check::satisfiable_with_prefix(
                  cs.constraints[static_cast<size_t>(k)], 4, 2, prefixes, 0),
              (oracle.satisfiable_mask >> k & 1) != 0)
        << "constraint " << k;
}

TEST(SatisfiableWithPrefix, PrefixDecidesPairInB2) {
  FaceConstraint c;
  c.members = {0, 1};
  // Members share column 0 with the outsider: the only care column a
  // dim-1 face could use cannot exclude symbol 2.
  EXPECT_FALSE(check::satisfiable_with_prefix(c, 3, 2, {0, 0, 0}, 1));
  // Outsider differs in column 0: the face pins column 0 and is clean.
  EXPECT_TRUE(check::satisfiable_with_prefix(c, 3, 2, {0, 0, 1}, 1));
}

TEST(SatisfiableWithPrefix, MembersForcedApartAreStillPlaceable) {
  FaceConstraint c;
  c.members = {0, 1};
  // Members already differ in column 0, so column 0 is free; a dim-1
  // face along column 0 works when the outsiders can sit outside it.
  EXPECT_TRUE(check::satisfiable_with_prefix(c, 3, 2, {0, 1, 0}, 1));
  // With 4 symbols every cell of B^2 is used: the face {col1 = v}
  // contains exactly the two members iff both outsiders take col1 = 1-v,
  // which their two distinct codes allow.
  EXPECT_TRUE(check::satisfiable_with_prefix(c, 4, 2, {0, 1, 0, 1}, 1));
}

}  // namespace
}  // namespace picola
