// The SAT reduction against the exhaustive small-instance oracle: on
// every n <= 8 instance the exact backend must find an encoding
// achieving the oracle's maximum simultaneously-satisfied constraint
// count (and prove it), and must prove infeasibility below the minimum
// code length.

#include <gtest/gtest.h>

#include "check/instance_gen.h"
#include "check/oracle.h"
#include "check/verifier.h"
#include "constraints/dichotomy.h"
#include "encoders/encoding.h"
#include "sat/dimacs.h"
#include "sat/encode.h"

namespace picola::sat {
namespace {

ConstraintSet demo_set() {
  ConstraintSet cs;
  cs.num_symbols = 6;
  cs.add({0, 1, 2});
  cs.add({2, 3});
  cs.add({4, 5});
  cs.add({1, 3, 5});
  return cs;
}

TEST(FaceCnf, ModelDecodesToValidEncoding) {
  ConstraintSet cs = demo_set();
  FaceCnf fc = build_face_cnf(cs, 3);
  ASSERT_EQ(fc.cnf.validate(), "");
  Solver solver(fc.cnf);
  ASSERT_EQ(solver.solve(), SolveStatus::kSat);
  Encoding enc = decode_model(fc, solver);
  EXPECT_EQ(enc.validate(), "");
  EXPECT_EQ(enc.code(0), 0u) << "symbol 0 must be pinned to code 0";
  // Hard clauses: every constraint satisfied.
  EXPECT_EQ(count_satisfied_constraints(cs, enc), cs.size());
}

TEST(FaceCnf, RejectsBadArguments) {
  ConstraintSet cs = demo_set();
  EXPECT_THROW(build_face_cnf(cs, 0), std::invalid_argument);
  EXPECT_THROW(build_face_cnf(cs, 21), std::invalid_argument);
  ConstraintSet bad;
  bad.num_symbols = 1;
  EXPECT_THROW(build_face_cnf(bad, 3), std::invalid_argument);
}

TEST(FaceCnf, DimacsRoundTripReproducesVerdict) {
  ConstraintSet cs = demo_set();
  for (int nv : {3, 2}) {  // 2 bits: 6 symbols cannot even be distinct
    FaceCnf fc = build_face_cnf(cs, nv);
    std::string text = write_dimacs(fc.cnf, {"picola face reduction"});
    DimacsParseResult parsed = parse_dimacs(text);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    Solver in_tree(fc.cnf);
    Solver round_trip(parsed.cnf);
    EXPECT_EQ(in_tree.solve(), round_trip.solve()) << "nv=" << nv;
  }
}

TEST(SatExact, ProvesInfeasibilityBelowMinimumLength) {
  ConstraintSet cs = demo_set();  // 6 symbols: needs 3 bits
  SatExactOptions opt;
  opt.num_bits = 2;
  SatExactResult res = sat_exact_encode(cs, opt);
  EXPECT_FALSE(res.feasible);
  EXPECT_TRUE(res.proven);
  EXPECT_EQ(res.satisfied, 0);
}

TEST(SatExact, MatchesOracleOnGeneratedInstances) {
  check::GeneratorOptions gopt;
  gopt.min_symbols = 3;
  gopt.max_symbols = 8;
  gopt.max_extra_bits = 0;  // minimum length, where the oracle is exact
  check::InstanceGenerator gen(20260808, gopt);
  int checked = 0;
  while (checked < 25) {
    check::InstanceGenerator::Instance inst = gen.next();
    if (inst.set.num_symbols > 8 || inst.set.size() > 8) continue;
    check::OracleResult truth = check::oracle_solve(inst.set);

    SatExactOptions opt;
    SatExactResult res = sat_exact_encode(inst.set, opt);
    ASSERT_TRUE(res.feasible)
        << inst.family << "#" << inst.index << ": " << inst.set.to_string();
    ASSERT_TRUE(res.proven)
        << inst.family << "#" << inst.index << " exhausted its budget";
    EXPECT_EQ(res.satisfied, truth.max_satisfied)
        << inst.family << "#" << inst.index << ": " << inst.set.to_string();
    check::VerifyReport report =
        check::verify_encoding(inst.set, res.encoding);
    EXPECT_TRUE(report.ok()) << report.to_string();
    ++checked;
  }
}

TEST(SatExact, AllCardEncodingsAgree) {
  ConstraintSet cs = demo_set();
  int baseline = -1;
  for (CardEncoding e : {CardEncoding::kPairwise, CardEncoding::kSequential,
                         CardEncoding::kCommander}) {
    SatExactOptions opt;
    opt.card = e;
    SatExactResult res = sat_exact_encode(cs, opt);
    ASSERT_TRUE(res.feasible && res.proven) << card_encoding_name(e);
    if (baseline < 0) baseline = res.satisfied;
    EXPECT_EQ(res.satisfied, baseline) << card_encoding_name(e);
  }
}

TEST(FaceCnf, DifferenceScalesWhereIndicatorGuardTrips) {
  // 40 symbols at 14 bits: the legacy indicator formulation would emit
  // 40 * 2^14 indicator variables and trips its size guard; the
  // difference encoding is O(n^2 * nv) and sails through.
  ConstraintSet cs;
  cs.num_symbols = 40;
  cs.add({0, 1, 2});
  cs.add({3, 4});
  ReductionOptions ind;
  ind.distinct = DistinctEncoding::kIndicator;
  EXPECT_THROW(build_face_cnf(cs, 14, ind), std::invalid_argument);
  FaceCnf fc = build_face_cnf(cs, 14);  // kDifference default
  ASSERT_EQ(fc.cnf.validate(), "");
  EXPECT_LT(fc.cnf.num_vars, 40 * (1 << 14));
  Solver solver(fc.cnf);
  EXPECT_EQ(solver.solve(), SolveStatus::kSat);
}

TEST(SatExact, AllDistinctEncodingsAgree) {
  check::GeneratorOptions gopt;
  gopt.min_symbols = 4;
  gopt.max_symbols = 8;
  gopt.max_extra_bits = 0;
  check::InstanceGenerator gen(42, gopt);
  int checked = 0;
  while (checked < 8) {
    check::InstanceGenerator::Instance inst = gen.next();
    if (inst.set.num_symbols > 8 || inst.set.size() > 8) continue;
    int baseline = -1;
    for (DistinctEncoding d :
         {DistinctEncoding::kDifference, DistinctEncoding::kIndicator,
          DistinctEncoding::kLazy}) {
      SatExactOptions opt;
      opt.distinct = d;
      SatExactResult res = sat_exact_encode(inst.set, opt);
      ASSERT_TRUE(res.feasible && res.proven)
          << distinct_encoding_name(d) << " on " << inst.family << "#"
          << inst.index;
      if (baseline < 0) baseline = res.satisfied;
      EXPECT_EQ(res.satisfied, baseline)
          << distinct_encoding_name(d) << " on " << inst.family << "#"
          << inst.index << ": " << inst.set.to_string();
      check::VerifyReport rep = check::verify_encoding(inst.set, res.encoding);
      EXPECT_TRUE(rep.ok()) << rep.to_string();
    }
    ++checked;
  }
}

TEST(SatExact, SweepModesAreBitIdentical) {
  // The canonical-model contract: every sweep mode that proves the same
  // target must hand back the same encoding bit for bit, not merely an
  // equally good one.
  check::GeneratorOptions gopt;
  gopt.min_symbols = 4;
  gopt.max_symbols = 8;
  gopt.max_extra_bits = 0;
  check::InstanceGenerator gen(7, gopt);
  int checked = 0;
  while (checked < 6) {
    check::InstanceGenerator::Instance inst = gen.next();
    if (inst.set.num_symbols > 8 || inst.set.size() > 8) continue;
    SatExactOptions base;
    base.sweep = SweepMode::kDescending;
    SatExactResult ref = sat_exact_encode(inst.set, base);
    ASSERT_TRUE(ref.proven) << inst.family << "#" << inst.index;
    for (SweepMode m : {SweepMode::kBinary, SweepMode::kScratch}) {
      SatExactOptions opt;
      opt.sweep = m;
      SatExactResult res = sat_exact_encode(inst.set, opt);
      EXPECT_EQ(res.feasible, ref.feasible) << sweep_mode_name(m);
      EXPECT_EQ(res.satisfied, ref.satisfied)
          << sweep_mode_name(m) << " on " << inst.family << "#" << inst.index
          << ": " << inst.set.to_string();
      EXPECT_EQ(res.proven, ref.proven) << sweep_mode_name(m);
      EXPECT_EQ(res.encoding.codes, ref.encoding.codes)
          << sweep_mode_name(m) << " on " << inst.family << "#" << inst.index;
    }
    ++checked;
  }
}

TEST(SatExact, NameParsersRoundTrip) {
  for (DistinctEncoding d :
       {DistinctEncoding::kDifference, DistinctEncoding::kIndicator,
        DistinctEncoding::kLazy})
    EXPECT_EQ(parse_distinct_encoding(distinct_encoding_name(d)), d);
  EXPECT_FALSE(parse_distinct_encoding("bitwise").has_value());
  for (SweepMode m :
       {SweepMode::kDescending, SweepMode::kBinary, SweepMode::kScratch})
    EXPECT_EQ(parse_sweep_mode(sweep_mode_name(m)), m);
  EXPECT_FALSE(parse_sweep_mode("linear").has_value());
}

TEST(SatExact, DeterministicAcrossRuns) {
  ConstraintSet cs = demo_set();
  SatExactResult a = sat_exact_encode(cs);
  SatExactResult b = sat_exact_encode(cs);
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_EQ(a.encoding.codes, b.encoding.codes);
  EXPECT_EQ(a.satisfied, b.satisfied);
  EXPECT_EQ(a.solver_calls, b.solver_calls);
}

TEST(SatExact, CancelledTokenThrows) {
  auto token = std::make_shared<CancelToken>();
  token->cancel();
  SatExactOptions opt;
  opt.cancel = token;
  EXPECT_THROW(sat_exact_encode(demo_set(), opt), CancelledError);
}

TEST(SatExact, TinyBudgetReportsUnproven) {
  check::GeneratorOptions gopt;
  gopt.min_symbols = 8;
  gopt.max_symbols = 8;
  gopt.max_constraints = 6;
  check::InstanceGenerator gen(7, gopt);
  check::InstanceGenerator::Instance inst = gen.next();
  SatExactOptions opt;
  opt.max_conflicts = 1;
  SatExactResult res = sat_exact_encode(inst.set, opt);
  // With a one-conflict budget the search cannot refute anything hard:
  // whatever it returns must not claim a proof unless no call hit the
  // budget (possible only if every step finished within one conflict).
  if (res.feasible && res.proven) {
    EXPECT_EQ(res.satisfied, inst.set.size());
  }
}

}  // namespace
}  // namespace picola::sat
