// CDCL solver unit tests: known SAT/UNSAT formulas, pigeonhole proofs,
// budgets, deadlines and cooperative cancellation.

#include <gtest/gtest.h>

#include <chrono>

#include "encoders/restart.h"
#include "sat/cnf.h"
#include "sat/solver.h"

namespace picola::sat {
namespace {

/// PHP(p, h): p pigeons into h holes, each pigeon in some hole, no two
/// pigeons share a hole.  UNSAT iff p > h.
Cnf pigeonhole(int pigeons, int holes) {
  Cnf cnf;
  std::vector<std::vector<int>> var(static_cast<size_t>(pigeons));
  for (int p = 0; p < pigeons; ++p)
    for (int h = 0; h < holes; ++h)
      var[static_cast<size_t>(p)].push_back(cnf.new_var());
  for (int p = 0; p < pigeons; ++p)
    cnf.add_clause(var[static_cast<size_t>(p)]);
  for (int h = 0; h < holes; ++h)
    for (int p = 0; p < pigeons; ++p)
      for (int q = p + 1; q < pigeons; ++q)
        cnf.add_clause({-var[static_cast<size_t>(p)][static_cast<size_t>(h)],
                        -var[static_cast<size_t>(q)][static_cast<size_t>(h)]});
  return cnf;
}

TEST(Solver, TrivialSatAndModel) {
  Cnf cnf;
  int a = cnf.new_var(), b = cnf.new_var();
  cnf.add_clause({a});
  cnf.add_clause({-a, b});
  Solver s(cnf);
  ASSERT_EQ(s.solve(), SolveStatus::kSat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
}

TEST(Solver, UnitConflictIsUnsat) {
  Cnf cnf;
  int a = cnf.new_var();
  cnf.add_clause({a});
  cnf.add_clause({-a});
  Solver s(cnf);
  EXPECT_EQ(s.solve(), SolveStatus::kUnsat);
}

TEST(Solver, ImplicationChainPropagates) {
  Cnf cnf;
  constexpr int kN = 50;
  for (int i = 0; i < kN; ++i) cnf.new_var();
  cnf.add_clause({1});
  for (int i = 1; i < kN; ++i) cnf.add_clause({-i, i + 1});
  Solver s(cnf);
  ASSERT_EQ(s.solve(), SolveStatus::kSat);
  for (int i = 1; i <= kN; ++i) EXPECT_TRUE(s.model_value(i));
}

TEST(Solver, XorChainRequiresLearning) {
  // x1 xor x2 xor ... parity chain forced to an odd total via units; the
  // CNF of each xor is 4 ternary clauses over (a, b, out).
  Cnf cnf;
  int a = cnf.new_var();
  int acc = a;
  for (int i = 0; i < 8; ++i) {
    int b = cnf.new_var();
    int out = cnf.new_var();
    cnf.add_clause({-acc, -b, -out});
    cnf.add_clause({acc, b, -out});
    cnf.add_clause({acc, -b, out});
    cnf.add_clause({-acc, b, out});
    acc = out;
  }
  cnf.add_clause({acc});  // parity = 1: satisfiable
  Solver s(cnf);
  EXPECT_EQ(s.solve(), SolveStatus::kSat);
}

TEST(Solver, PigeonholeSatWhenHolesSuffice) {
  Solver s(pigeonhole(4, 4));
  EXPECT_EQ(s.solve(), SolveStatus::kSat);
}

TEST(Solver, PigeonholeUnsatProof) {
  Solver s5(pigeonhole(5, 4));
  EXPECT_EQ(s5.solve(), SolveStatus::kUnsat);
  Solver s7(pigeonhole(7, 6));
  EXPECT_EQ(s7.solve(), SolveStatus::kUnsat);
}

TEST(Solver, ConflictBudgetReturnsUnknown) {
  SolverOptions opt;
  opt.max_conflicts = 1;
  Solver s(pigeonhole(7, 6), opt);
  EXPECT_EQ(s.solve(), SolveStatus::kUnknown);
  EXPECT_GE(s.stats().conflicts, 1);
}

TEST(Solver, ExpiredDeadlineReturnsUnknown) {
  SolverOptions opt;
  opt.deadline_ns = 1;  // epoch + 1ns: long expired
  Solver s(pigeonhole(8, 7), opt);
  EXPECT_EQ(s.solve(), SolveStatus::kUnknown);
}

TEST(Solver, CancelledTokenThrows) {
  auto token = std::make_shared<CancelToken>();
  token->cancel();
  SolverOptions opt;
  opt.cancel = token;
  Solver s(pigeonhole(5, 4), opt);
  EXPECT_THROW(s.solve(), CancelledError);
}

TEST(Solver, RejectsMalformedCnf) {
  Cnf cnf;
  cnf.num_vars = 1;
  cnf.add_clause({});
  EXPECT_THROW(Solver{cnf}, std::invalid_argument);
}

TEST(Solver, DeterministicAcrossRuns) {
  Cnf cnf = pigeonhole(6, 6);
  Solver a(cnf), b(cnf);
  ASSERT_EQ(a.solve(), SolveStatus::kSat);
  ASSERT_EQ(b.solve(), SolveStatus::kSat);
  for (int v = 1; v <= a.num_vars(); ++v)
    EXPECT_EQ(a.model_value(v), b.model_value(v)) << "var " << v;
  EXPECT_EQ(a.stats().decisions, b.stats().decisions);
  EXPECT_EQ(a.stats().conflicts, b.stats().conflicts);
}

TEST(Solver, AssumptionsRestrictOnlyThatCall) {
  Cnf cnf;
  int a = cnf.new_var(), b = cnf.new_var();
  cnf.add_clause({a, b});
  cnf.add_clause({-a, b});
  Solver s(cnf);
  // b = false forces both a and -a: unsat *under the assumption* only.
  EXPECT_EQ(s.solve({-b}), SolveStatus::kUnsat);
  // The assumption was never a clause: the same solver is SAT again.
  ASSERT_EQ(s.solve(), SolveStatus::kSat);
  EXPECT_TRUE(s.model_value(b));
}

TEST(Solver, ModelsIncludeTheAssumptions) {
  Cnf cnf = pigeonhole(4, 4);
  Solver s(cnf);
  ASSERT_EQ(s.solve({3}), SolveStatus::kSat);
  EXPECT_TRUE(s.model_value(3));
  ASSERT_EQ(s.solve({-3}), SolveStatus::kSat);
  EXPECT_FALSE(s.model_value(3));
}

TEST(Solver, RejectsOutOfRangeAssumption) {
  Cnf cnf;
  cnf.new_var();
  cnf.add_clause({1});
  Solver s(cnf);
  EXPECT_THROW(s.solve({2}), std::invalid_argument);
  EXPECT_THROW(s.solve({0}), std::invalid_argument);
}

TEST(Solver, ConflictBudgetIsPerCallAndLearningPersists) {
  // The incremental sweep's contract: every solve() call gets the full
  // budget, and whatever earlier calls learned stays.  A budget far too
  // small for one-shot refutation must still converge over repeated
  // calls on the same solver.
  SolverOptions opt;
  opt.max_conflicts = 60;
  Solver s(pigeonhole(6, 5), opt);
  int calls = 0;
  SolveStatus st = SolveStatus::kUnknown;
  while (st == SolveStatus::kUnknown && calls < 400) {
    st = s.solve();
    ++calls;
  }
  EXPECT_EQ(st, SolveStatus::kUnsat);
  EXPECT_GT(calls, 1) << "instance refuted within one budget";
  // Total conflicts exceed a single allowance: later calls demonstrably
  // got a fresh budget instead of inheriting an exhausted one.
  EXPECT_GT(s.stats().conflicts, opt.max_conflicts);
}

TEST(Solver, GrowsIncrementally) {
  Cnf cnf;
  int a = cnf.new_var(), b = cnf.new_var();
  cnf.add_clause({a, b});
  Solver s(cnf);
  ASSERT_EQ(s.solve(), SolveStatus::kSat);
  int c = s.add_var();
  EXPECT_EQ(c, 3);
  EXPECT_TRUE(s.add_clause({-a, c}));
  EXPECT_TRUE(s.add_clause({-b, c}));
  ASSERT_EQ(s.solve(), SolveStatus::kSat);
  EXPECT_TRUE(s.model_value(c)) << "a|b plus the implications force c";
  // The unit -c propagates to a root conflict with everything above.
  EXPECT_FALSE(s.add_clause({-c}));
  EXPECT_EQ(s.solve(), SolveStatus::kUnsat);
}

TEST(Solver, LearnedDbReductionKeepsSoundnessAndDeterminism) {
  // Drive the solver past the first reduce_db() threshold (4000 live
  // learned clauses) and check the verdict is still sound and the whole
  // trajectory — including the reductions — replays identically.
  SolverOptions opt;
  opt.max_conflicts = 12'000;
  Cnf cnf = pigeonhole(9, 8);
  Solver a(cnf, opt), b(cnf, opt);
  SolveStatus sa = a.solve(), sb = b.solve();
  EXPECT_NE(sa, SolveStatus::kSat) << "PHP(9,8) is unsatisfiable";
  EXPECT_GE(a.stats().db_reductions, 1)
      << "budget never reached the reduction threshold; raise it";
  EXPECT_EQ(sa, sb);
  EXPECT_EQ(a.stats().conflicts, b.stats().conflicts);
  EXPECT_EQ(a.stats().decisions, b.stats().decisions);
  EXPECT_EQ(a.stats().db_reductions, b.stats().db_reductions);
}

TEST(Solver, ReductionUnderAssumptionSweepStaysExact) {
  // Mimic the sat backend's descending sweep on a formula small enough
  // to answer by inspection: force many reductions (tiny budget spread
  // over many calls is not enough — use the conflict-heavy PHP core) and
  // then check easy queries on the same solver still answer exactly.
  SolverOptions opt;
  opt.max_conflicts = 12'000;
  Solver s(pigeonhole(9, 8), opt);
  (void)s.solve();  // burn through reductions
  ASSERT_GE(s.stats().db_reductions, 1);
  // The pigeon-0 clause under "pigeon 0 nowhere" is immediately unsat —
  // an exact answer the reduced clause database must still deliver.
  std::vector<int> no_holes;
  for (int h = 1; h <= 8; ++h) no_holes.push_back(-h);
  EXPECT_EQ(s.solve(no_holes), SolveStatus::kUnsat);
}

TEST(Solver, ResolveAfterSatIsIdempotent) {
  Cnf cnf = pigeonhole(5, 5);
  Solver s(cnf);
  ASSERT_EQ(s.solve(), SolveStatus::kSat);
  std::vector<bool> first;
  for (int v = 1; v <= s.num_vars(); ++v) first.push_back(s.model_value(v));
  ASSERT_EQ(s.solve(), SolveStatus::kSat);
  for (int v = 1; v <= s.num_vars(); ++v)
    EXPECT_EQ(s.model_value(v), first[static_cast<size_t>(v - 1)]);
}

}  // namespace
}  // namespace picola::sat
