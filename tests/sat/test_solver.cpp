// CDCL solver unit tests: known SAT/UNSAT formulas, pigeonhole proofs,
// budgets, deadlines and cooperative cancellation.

#include <gtest/gtest.h>

#include <chrono>

#include "encoders/restart.h"
#include "sat/cnf.h"
#include "sat/solver.h"

namespace picola::sat {
namespace {

/// PHP(p, h): p pigeons into h holes, each pigeon in some hole, no two
/// pigeons share a hole.  UNSAT iff p > h.
Cnf pigeonhole(int pigeons, int holes) {
  Cnf cnf;
  std::vector<std::vector<int>> var(static_cast<size_t>(pigeons));
  for (int p = 0; p < pigeons; ++p)
    for (int h = 0; h < holes; ++h)
      var[static_cast<size_t>(p)].push_back(cnf.new_var());
  for (int p = 0; p < pigeons; ++p)
    cnf.add_clause(var[static_cast<size_t>(p)]);
  for (int h = 0; h < holes; ++h)
    for (int p = 0; p < pigeons; ++p)
      for (int q = p + 1; q < pigeons; ++q)
        cnf.add_clause({-var[static_cast<size_t>(p)][static_cast<size_t>(h)],
                        -var[static_cast<size_t>(q)][static_cast<size_t>(h)]});
  return cnf;
}

TEST(Solver, TrivialSatAndModel) {
  Cnf cnf;
  int a = cnf.new_var(), b = cnf.new_var();
  cnf.add_clause({a});
  cnf.add_clause({-a, b});
  Solver s(cnf);
  ASSERT_EQ(s.solve(), SolveStatus::kSat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
}

TEST(Solver, UnitConflictIsUnsat) {
  Cnf cnf;
  int a = cnf.new_var();
  cnf.add_clause({a});
  cnf.add_clause({-a});
  Solver s(cnf);
  EXPECT_EQ(s.solve(), SolveStatus::kUnsat);
}

TEST(Solver, ImplicationChainPropagates) {
  Cnf cnf;
  constexpr int kN = 50;
  for (int i = 0; i < kN; ++i) cnf.new_var();
  cnf.add_clause({1});
  for (int i = 1; i < kN; ++i) cnf.add_clause({-i, i + 1});
  Solver s(cnf);
  ASSERT_EQ(s.solve(), SolveStatus::kSat);
  for (int i = 1; i <= kN; ++i) EXPECT_TRUE(s.model_value(i));
}

TEST(Solver, XorChainRequiresLearning) {
  // x1 xor x2 xor ... parity chain forced to an odd total via units; the
  // CNF of each xor is 4 ternary clauses over (a, b, out).
  Cnf cnf;
  int a = cnf.new_var();
  int acc = a;
  for (int i = 0; i < 8; ++i) {
    int b = cnf.new_var();
    int out = cnf.new_var();
    cnf.add_clause({-acc, -b, -out});
    cnf.add_clause({acc, b, -out});
    cnf.add_clause({acc, -b, out});
    cnf.add_clause({-acc, b, out});
    acc = out;
  }
  cnf.add_clause({acc});  // parity = 1: satisfiable
  Solver s(cnf);
  EXPECT_EQ(s.solve(), SolveStatus::kSat);
}

TEST(Solver, PigeonholeSatWhenHolesSuffice) {
  Solver s(pigeonhole(4, 4));
  EXPECT_EQ(s.solve(), SolveStatus::kSat);
}

TEST(Solver, PigeonholeUnsatProof) {
  Solver s5(pigeonhole(5, 4));
  EXPECT_EQ(s5.solve(), SolveStatus::kUnsat);
  Solver s7(pigeonhole(7, 6));
  EXPECT_EQ(s7.solve(), SolveStatus::kUnsat);
}

TEST(Solver, ConflictBudgetReturnsUnknown) {
  SolverOptions opt;
  opt.max_conflicts = 1;
  Solver s(pigeonhole(7, 6), opt);
  EXPECT_EQ(s.solve(), SolveStatus::kUnknown);
  EXPECT_GE(s.stats().conflicts, 1);
}

TEST(Solver, ExpiredDeadlineReturnsUnknown) {
  SolverOptions opt;
  opt.deadline_ns = 1;  // epoch + 1ns: long expired
  Solver s(pigeonhole(8, 7), opt);
  EXPECT_EQ(s.solve(), SolveStatus::kUnknown);
}

TEST(Solver, CancelledTokenThrows) {
  auto token = std::make_shared<CancelToken>();
  token->cancel();
  SolverOptions opt;
  opt.cancel = token;
  Solver s(pigeonhole(5, 4), opt);
  EXPECT_THROW(s.solve(), CancelledError);
}

TEST(Solver, RejectsMalformedCnf) {
  Cnf cnf;
  cnf.num_vars = 1;
  cnf.add_clause({});
  EXPECT_THROW(Solver{cnf}, std::invalid_argument);
}

TEST(Solver, DeterministicAcrossRuns) {
  Cnf cnf = pigeonhole(6, 6);
  Solver a(cnf), b(cnf);
  ASSERT_EQ(a.solve(), SolveStatus::kSat);
  ASSERT_EQ(b.solve(), SolveStatus::kSat);
  for (int v = 1; v <= a.num_vars(); ++v)
    EXPECT_EQ(a.model_value(v), b.model_value(v)) << "var " << v;
  EXPECT_EQ(a.stats().decisions, b.stats().decisions);
  EXPECT_EQ(a.stats().conflicts, b.stats().conflicts);
}

TEST(Solver, ResolveAfterSatIsIdempotent) {
  Cnf cnf = pigeonhole(5, 5);
  Solver s(cnf);
  ASSERT_EQ(s.solve(), SolveStatus::kSat);
  std::vector<bool> first;
  for (int v = 1; v <= s.num_vars(); ++v) first.push_back(s.model_value(v));
  ASSERT_EQ(s.solve(), SolveStatus::kSat);
  for (int v = 1; v <= s.num_vars(); ++v)
    EXPECT_EQ(s.model_value(v), first[static_cast<size_t>(v - 1)]);
}

}  // namespace
}  // namespace picola::sat
