// Cardinality encodings validated against brute-force enumeration: an
// at-most-k (at-least-k) formula over n primary variables must be
// satisfiable exactly for the assignments with <= k (>= k) true
// literals, for every encoding family.

#include <gtest/gtest.h>

#include "sat/cnf.h"
#include "sat/dimacs.h"
#include "sat/solver.h"

namespace picola::sat {
namespace {

const CardEncoding kAll[] = {CardEncoding::kPairwise, CardEncoding::kSequential,
                             CardEncoding::kCommander};

/// Solvability of `base` with the first n variables pinned to the bits of
/// `assignment`.
bool solvable_with(const Cnf& base, int n, unsigned assignment) {
  Cnf work = base;
  for (int i = 0; i < n; ++i)
    work.add_clause({(assignment >> i) & 1u ? i + 1 : -(i + 1)});
  Solver solver(work);
  return solver.solve() == SolveStatus::kSat;
}

TEST(Cnf, ValidateCatchesMalformedClauses) {
  Cnf cnf;
  cnf.num_vars = 2;
  cnf.add_clause({1, -2});
  EXPECT_EQ(cnf.validate(), "");
  cnf.add_clause({});
  EXPECT_NE(cnf.validate(), "");
  cnf.clauses.pop_back();
  cnf.add_clause({3});
  EXPECT_NE(cnf.validate(), "");
}

TEST(Cnf, AtMostOneAllEncodings) {
  for (CardEncoding e : kAll) {
    for (int n = 2; n <= 6; ++n) {
      Cnf cnf;
      std::vector<int> lits;
      for (int i = 0; i < n; ++i) lits.push_back(cnf.new_var());
      add_at_most_one(cnf, lits, e);
      ASSERT_EQ(cnf.validate(), "");
      for (unsigned a = 0; a < (1u << n); ++a) {
        int trues = __builtin_popcount(a);
        EXPECT_EQ(solvable_with(cnf, n, a), trues <= 1)
            << card_encoding_name(e) << " n=" << n << " assignment=" << a;
      }
    }
  }
}

TEST(Cnf, AtMostKAllEncodings) {
  for (CardEncoding e : kAll) {
    for (int n = 3; n <= 6; ++n) {
      for (int k = 0; k <= n; ++k) {
        Cnf cnf;
        std::vector<int> lits;
        for (int i = 0; i < n; ++i) lits.push_back(cnf.new_var());
        add_at_most_k(cnf, lits, k, e);
        ASSERT_EQ(cnf.validate(), "");
        for (unsigned a = 0; a < (1u << n); ++a) {
          int trues = __builtin_popcount(a);
          EXPECT_EQ(solvable_with(cnf, n, a), trues <= k)
              << card_encoding_name(e) << " n=" << n << " k=" << k
              << " assignment=" << a;
        }
      }
    }
  }
}

TEST(Cnf, AtLeastKAllEncodings) {
  for (CardEncoding e : kAll) {
    for (int n = 3; n <= 5; ++n) {
      for (int k = 0; k <= n + 1; ++k) {
        Cnf cnf;
        std::vector<int> lits;
        for (int i = 0; i < n; ++i) lits.push_back(cnf.new_var());
        add_at_least_k(cnf, lits, k, e);
        ASSERT_EQ(cnf.validate(), "");
        for (unsigned a = 0; a < (1u << n); ++a) {
          int trues = __builtin_popcount(a);
          EXPECT_EQ(solvable_with(cnf, n, a), trues >= k)
              << card_encoding_name(e) << " n=" << n << " k=" << k
              << " assignment=" << a;
        }
      }
    }
  }
}

TEST(Cnf, TotalizerForcesOutputsUpToTheTrueCount) {
  // Counting direction only: o[j] must be forced whenever >= j+1 inputs
  // are true, and nothing may force any o[j] on its own (the formula
  // with inputs pinned is always satisfiable, even with all outputs
  // negated above the count).
  for (int n = 1; n <= 6; ++n) {
    Cnf cnf;
    std::vector<int> lits;
    for (int i = 0; i < n; ++i) lits.push_back(cnf.new_var());
    std::vector<int> out = add_totalizer(cnf, lits);
    ASSERT_EQ(out.size(), static_cast<size_t>(n));
    ASSERT_EQ(cnf.validate(), "");
    for (unsigned a = 0; a < (1u << n); ++a) {
      int trues = __builtin_popcount(a);
      Cnf work = cnf;
      for (int i = 0; i < n; ++i)
        work.add_clause({(a >> i) & 1u ? lits[size_t(i)] : -lits[size_t(i)]});
      // Negating every output above the count must stay satisfiable...
      for (int j = trues; j < n; ++j) work.add_clause({-out[size_t(j)]});
      Solver solver(work);
      ASSERT_EQ(solver.solve(), SolveStatus::kSat)
          << "n=" << n << " assignment=" << a;
      // ...and every output below it must come out forced true.
      for (int j = 0; j < trues; ++j)
        EXPECT_TRUE(solver.model_value(out[size_t(j)]))
            << "n=" << n << " assignment=" << a << " output " << j;
    }
  }
}

TEST(Cnf, TotalizerAssumptionCapsTheCount) {
  // The incremental-sweep contract: one totalizer, every bound.  For
  // each cap c, adding the single unit -o[c] must make the formula
  // satisfiable exactly for the assignments with <= c true inputs.
  constexpr int kN = 5;
  Cnf cnf;
  std::vector<int> lits;
  for (int i = 0; i < kN; ++i) lits.push_back(cnf.new_var());
  std::vector<int> out = add_totalizer(cnf, lits);
  for (int cap = 0; cap < kN; ++cap) {
    Cnf bounded = cnf;
    bounded.add_clause({-out[size_t(cap)]});
    for (unsigned a = 0; a < (1u << kN); ++a) {
      int trues = __builtin_popcount(a);
      EXPECT_EQ(solvable_with(bounded, kN, a), trues <= cap)
          << "cap=" << cap << " assignment=" << a;
    }
  }
}

TEST(Cnf, ParseCardEncodingRoundTrip) {
  for (CardEncoding e : kAll)
    EXPECT_EQ(parse_card_encoding(card_encoding_name(e)), e);
  EXPECT_FALSE(parse_card_encoding("totalizer").has_value());
}

TEST(Dimacs, RoundTripPreservesFormula) {
  Cnf cnf;
  int a = cnf.new_var(), b = cnf.new_var(), c = cnf.new_var();
  cnf.add_clause({a, -b});
  cnf.add_clause({b, c});
  cnf.add_clause({-a, -c});
  std::string text = write_dimacs(cnf, {"example", "two\nlines"});
  DimacsParseResult parsed = parse_dimacs(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.cnf.num_vars, cnf.num_vars);
  EXPECT_EQ(parsed.cnf.clauses, cnf.clauses);
}

TEST(Dimacs, ParserRejectsMalformedInput) {
  EXPECT_FALSE(parse_dimacs("").ok());
  EXPECT_FALSE(parse_dimacs("1 2 0\n").ok());                  // before header
  EXPECT_FALSE(parse_dimacs("p cnf 2 1\n3 0\n").ok());         // out of range
  EXPECT_FALSE(parse_dimacs("p cnf 2 1\n1 x 0\n").ok());       // bad token
  EXPECT_FALSE(parse_dimacs("p cnf 2 1\n1 2\n").ok());         // unterminated
  EXPECT_FALSE(parse_dimacs("p cnf 2 2\n1 0\n").ok());         // count mismatch
  EXPECT_FALSE(parse_dimacs("p cnf 2 0\np cnf 2 0\n").ok());   // dup header
  EXPECT_TRUE(parse_dimacs("c hi\np cnf 2 1\n1 -2 0\n").ok());
}

}  // namespace
}  // namespace picola::sat
