#include <gtest/gtest.h>

#include <random>

#include "core/theorem1.h"
#include "encoders/trivial.h"
#include "eval/constraint_eval.h"
#include "eval/metrics.h"

namespace picola {
namespace {

TEST(ConstraintEval, SatisfiedConstraintCostsOneCube) {
  Encoding e = sequential_encoding(4);
  FaceConstraint c;
  c.members = {0, 1};  // face 0-
  EXPECT_EQ(constraint_cube_count(c, e), 1);
}

TEST(ConstraintEval, ViolatedConstraintCostsMore) {
  Encoding e = sequential_encoding(4);
  FaceConstraint c;
  c.members = {0, 3};  // codes 00 and 11: two cubes needed
  EXPECT_EQ(constraint_cube_count(c, e), 2);
}

TEST(ConstraintEval, UnusedCodesAreDontCares) {
  // 3 symbols on 2 bits: codes 00, 01, 10; constraint {0,2} = {00,10}.
  // The offset is only 01; cube -0 covers {00,10} and the unused 11.
  Encoding e = sequential_encoding(3);
  FaceConstraint c;
  c.members = {0, 2};
  EXPECT_EQ(constraint_cube_count(c, e), 1);
}

TEST(ConstraintEval, TotalsAndSatisfiedCount) {
  Encoding e = sequential_encoding(4);
  ConstraintSet cs;
  cs.num_symbols = 4;
  cs.add({0, 1});  // 1 cube
  cs.add({0, 3});  // 2 cubes
  ConstraintEvalResult r = evaluate_constraints(cs, e);
  EXPECT_EQ(r.total_cubes, 3);
  EXPECT_EQ(r.satisfied, 1);
  EXPECT_EQ(r.per_constraint, (std::vector<int>{1, 2}));
}

TEST(ConstraintEval, AgreesWithTheorem1WhenApplicable) {
  std::mt19937_64 rng(123);
  int checked = 0;
  for (int trial = 0; trial < 200; ++trial) {
    int n = 6 + static_cast<int>(rng() % 6);
    Encoding e = random_encoding(n, rng());
    FaceConstraint c;
    for (int s = 0; s < n; ++s)
      if (rng() % 2) c.members.push_back(s);
    if (static_cast<int>(c.members.size()) < 2 ||
        static_cast<int>(c.members.size()) >= n)
      continue;
    auto t1 = theorem1_cube_count(c, e);
    if (!t1) continue;
    ++checked;
    // Espresso may still beat the constructive count, never the reverse
    // being unsound: the minimised cover is a correct implementation, so
    // its size is at most the constructive one.
    EXPECT_LE(constraint_cube_count(c, e), *t1);
  }
  EXPECT_GT(checked, 20);
}

TEST(Metrics, EncodingQualitySummarises) {
  Encoding e = sequential_encoding(4);
  ConstraintSet cs;
  cs.num_symbols = 4;
  cs.add({0, 1});
  cs.add({0, 3});
  EncodingQuality q = encoding_quality(cs, e);
  EXPECT_EQ(q.satisfied_constraints, 1);
  EXPECT_EQ(q.total_dichotomies, 4);
  EXPECT_EQ(q.satisfied_dichotomies, 2);
}

TEST(Metrics, StopwatchAdvances) {
  Stopwatch sw;
  volatile long x = 0;
  for (long i = 0; i < 100000; ++i) x += i;
  EXPECT_GE(sw.elapsed_ms(), 0.0);
  EXPECT_EQ(format_ratio(1.234), "1.23");
}

}  // namespace
}  // namespace picola
