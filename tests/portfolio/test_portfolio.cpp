// Portfolio front-end: plan shape, deterministic repetition, the
// structural never-worse-than-picola guarantee, per-slot degradation and
// the self-check hook on non-picola backends.

#include <gtest/gtest.h>

#include "check/oracle.h"
#include "constraints/dichotomy.h"
#include "eval/constraint_eval.h"
#include "portfolio/portfolio.h"

namespace picola::portfolio {
namespace {

ConstraintSet demo_set() {
  ConstraintSet cs;
  cs.num_symbols = 6;
  cs.add({0, 1, 2});
  cs.add({2, 3});
  cs.add({4, 5});
  cs.add({1, 3, 5});
  return cs;
}

TEST(Plan, ShapesPerBackend) {
  EXPECT_EQ(portfolio_plan(BackendKind::kPicola, 3).size(), 3u);
  EXPECT_EQ(portfolio_plan(BackendKind::kSat, 3).size(), 1u);
  EXPECT_EQ(portfolio_plan(BackendKind::kAnneal, 3).size(), 3u);
  std::vector<BackendTask> all = portfolio_plan(BackendKind::kPortfolio, 3);
  ASSERT_EQ(all.size(), 7u);
  // picola slots first — the never-worse tie-break depends on this order.
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(all[static_cast<size_t>(r)].kind, BackendKind::kPicola);
    EXPECT_EQ(all[static_cast<size_t>(r)].restart, r);
  }
  EXPECT_EQ(all[3].kind, BackendKind::kSat);
  EXPECT_EQ(all[4].kind, BackendKind::kAnneal);
  EXPECT_EQ(portfolio_plan(BackendKind::kPicola, 0).size(), 1u);
}

TEST(Plan, BackendNamesRoundTrip) {
  for (BackendKind k : {BackendKind::kPicola, BackendKind::kSat,
                        BackendKind::kAnneal, BackendKind::kPortfolio})
    EXPECT_EQ(parse_backend_kind(backend_kind_name(k)), k);
  EXPECT_FALSE(parse_backend_kind("cplex").has_value());
}

TEST(Reduce, LowestCostThenLowestPlanIndex) {
  std::vector<BackendOutcome> outcomes(4);
  outcomes[0].feasible = true;
  outcomes[0].total_cubes = 7;
  outcomes[1].feasible = false;  // infeasible slots never win
  outcomes[1].total_cubes = 1;
  outcomes[2].feasible = true;
  outcomes[2].total_cubes = 5;
  outcomes[3].feasible = true;
  outcomes[3].total_cubes = 5;  // tie: earlier slot wins
  EXPECT_EQ(reduce_outcomes(outcomes), 2);
  EXPECT_EQ(reduce_outcomes({}), -1);
}

TEST(Portfolio, DeterministicAcrossRepeatedRuns) {
  ConstraintSet cs = demo_set();
  PortfolioOptions fopt;
  fopt.backend = BackendKind::kPortfolio;
  PortfolioResult a = portfolio_encode(cs, 3, {}, fopt);
  PortfolioResult b = portfolio_encode(cs, 3, {}, fopt);
  EXPECT_EQ(a.picola.encoding.codes, b.picola.encoding.codes);
  EXPECT_EQ(a.total_cubes, b.total_cubes);
  EXPECT_EQ(a.backend, b.backend);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].feasible, b.outcomes[i].feasible);
    EXPECT_EQ(a.outcomes[i].total_cubes, b.outcomes[i].total_cubes);
  }
}

TEST(Portfolio, NeverWorseThanPicolaAlone) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    ConstraintSet cs = demo_set();
    PicolaOptions popt;
    popt.tie_break_seed = seed;

    PortfolioOptions alone;
    alone.backend = BackendKind::kPicola;
    PortfolioResult p = portfolio_encode(cs, 2, popt, alone);

    PortfolioOptions all;
    all.backend = BackendKind::kPortfolio;
    PortfolioResult f = portfolio_encode(cs, 2, popt, all);

    EXPECT_LE(f.total_cubes, p.total_cubes) << "seed " << seed;
    // The picola slots run with identical seeds inside the portfolio.
    ASSERT_GE(f.outcomes.size(), 2u);
    EXPECT_EQ(f.outcomes[0].total_cubes, p.outcomes[0].total_cubes);
  }
}

TEST(Portfolio, SatBackendAloneIsExact) {
  ConstraintSet cs = demo_set();
  PortfolioOptions fopt;
  fopt.backend = BackendKind::kSat;
  PortfolioResult res = portfolio_encode(cs, 1, {}, fopt);
  EXPECT_EQ(res.backend, BackendKind::kSat);
  check::OracleResult truth = check::oracle_solve(cs);
  EXPECT_EQ(res.picola.stats.satisfied_constraints, truth.max_satisfied);
}

TEST(Portfolio, SatAloneOnInfeasibleLengthThrows) {
  ConstraintSet cs = demo_set();
  PicolaOptions popt;
  popt.num_bits = 0;  // minimum (3)
  PortfolioOptions fopt;
  fopt.backend = BackendKind::kSat;
  // Force an impossible length through a direct slot run: 6 symbols do
  // not fit in 2 bits.
  popt.num_bits = 2;
  BackendOutcome slot = run_backend_task(cs, popt, fopt,
                                         {BackendKind::kSat, 0}, nullptr);
  EXPECT_FALSE(slot.feasible);
  EXPECT_NE(slot.error.find("no encoding"), std::string::npos) << slot.error;
}

TEST(Portfolio, AnnealBackendProducesValidEncoding) {
  ConstraintSet cs = demo_set();
  PortfolioOptions fopt;
  fopt.backend = BackendKind::kAnneal;
  PicolaOptions popt;
  popt.self_check = true;  // verify_encoding runs on the annealer output
  PortfolioResult res = portfolio_encode(cs, 2, popt, fopt);
  EXPECT_EQ(res.backend, BackendKind::kAnneal);
  EXPECT_EQ(res.picola.encoding.validate(), "");
  EXPECT_EQ(res.picola.stats.satisfied_constraints,
            count_satisfied_constraints(cs, res.picola.encoding));
}

TEST(Portfolio, CancelledTokenAbortsRun) {
  auto token = std::make_shared<CancelToken>();
  token->cancel();
  PicolaOptions popt;
  popt.cancel = token;
  PortfolioOptions fopt;
  fopt.backend = BackendKind::kSat;
  EXPECT_THROW(portfolio_encode(demo_set(), 1, popt, fopt), CancelledError);
  fopt.backend = BackendKind::kAnneal;
  EXPECT_THROW(portfolio_encode(demo_set(), 1, popt, fopt), CancelledError);
}

TEST(Portfolio, WinnerCubesMatchIndependentEvaluation) {
  ConstraintSet cs = demo_set();
  PortfolioOptions fopt;
  fopt.backend = BackendKind::kPortfolio;
  PortfolioResult res = portfolio_encode(cs, 2, {}, fopt);
  EXPECT_EQ(res.total_cubes,
            evaluate_constraints(cs, res.picola.encoding).total_cubes);
}

}  // namespace
}  // namespace picola::portfolio
