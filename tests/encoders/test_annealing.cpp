#include <gtest/gtest.h>

#include "constraints/dichotomy.h"
#include "encoders/annealing.h"
#include "encoders/trivial.h"
#include "eval/constraint_eval.h"

namespace picola {
namespace {

ConstraintSet demo_set() {
  ConstraintSet cs;
  cs.num_symbols = 8;
  cs.add({0, 1});
  cs.add({2, 3, 4, 5});
  cs.add({6, 7});
  cs.add({1, 2});
  return cs;
}

TEST(Annealing, ProducesValidEncoding) {
  AnnealingResult r = annealing_encode(demo_set());
  EXPECT_EQ(r.encoding.validate(), "");
  EXPECT_EQ(r.encoding.num_bits, 3);
  EXPECT_GT(r.moves_tried, 0);
}

TEST(Annealing, DeterministicForFixedSeed) {
  AnnealingOptions opt;
  opt.seed = 5;
  AnnealingResult a = annealing_encode(demo_set(), opt);
  AnnealingResult b = annealing_encode(demo_set(), opt);
  EXPECT_EQ(a.encoding.codes, b.encoding.codes);
  EXPECT_EQ(a.best_score, b.best_score);
}

TEST(Annealing, BeatsSequentialOnStructuredProblem) {
  ConstraintSet cs = demo_set();
  AnnealingResult r = annealing_encode(cs);
  double seq = weighted_dichotomy_score(cs, sequential_encoding(8));
  EXPECT_GE(r.best_score, seq);
  // The demo set is fully satisfiable in 3 bits.
  EXPECT_EQ(count_satisfied_constraints(cs, r.encoding), cs.size());
}

TEST(Annealing, ReportedScoreMatchesEvaluator) {
  ConstraintSet cs = demo_set();
  AnnealingResult r = annealing_encode(cs);
  EXPECT_DOUBLE_EQ(r.best_score, weighted_dichotomy_score(cs, r.encoding));
}

TEST(Annealing, RespectsExplicitWidth) {
  AnnealingOptions opt;
  opt.num_bits = 5;
  AnnealingResult r = annealing_encode(demo_set(), opt);
  EXPECT_EQ(r.encoding.num_bits, 5);
  EXPECT_EQ(r.encoding.validate(), "");
}

TEST(Annealing, WeightedScoreHonoursWeights) {
  ConstraintSet cs;
  cs.num_symbols = 4;
  cs.add({0, 1}, 5.0);
  Encoding good = sequential_encoding(4);  // 00,01 adjacent: satisfied
  EXPECT_DOUBLE_EQ(weighted_dichotomy_score(cs, good), 10.0);  // 2 dich * 5
}

}  // namespace
}  // namespace picola
