#include <gtest/gtest.h>

#include <random>

#include "constraints/dichotomy.h"
#include "encoders/enc_like.h"
#include "encoders/exact.h"
#include "encoders/nova_like.h"
#include "encoders/trivial.h"
#include "eval/constraint_eval.h"

namespace picola {
namespace {

ConstraintSet small_set() {
  ConstraintSet cs;
  cs.num_symbols = 6;
  cs.add({0, 1});
  cs.add({2, 3});
  cs.add({1, 2, 4});
  return cs;
}

TEST(TrivialEncoders, SequentialGrayRandomAreValid) {
  for (int n : {2, 3, 5, 8, 13}) {
    EXPECT_EQ(sequential_encoding(n).validate(), "");
    EXPECT_EQ(gray_encoding(n).validate(), "");
    EXPECT_EQ(random_encoding(n, 42).validate(), "");
  }
}

TEST(TrivialEncoders, GrayAdjacentCodesDifferInOneBit) {
  Encoding e = gray_encoding(8);
  for (int i = 1; i < 8; ++i) {
    uint32_t x = e.code(i) ^ e.code(i - 1);
    EXPECT_EQ(x & (x - 1), 0u);  // power of two
  }
}

TEST(TrivialEncoders, RandomIsSeedDeterministic) {
  EXPECT_EQ(random_encoding(10, 7).codes, random_encoding(10, 7).codes);
  EXPECT_NE(random_encoding(10, 7).codes, random_encoding(10, 8).codes);
}

TEST(NovaLike, ValidEncodingAndEmbedsEasyConstraints) {
  NovaLikeResult r = nova_like_encode(small_set());
  EXPECT_EQ(r.encoding.validate(), "");
  EXPECT_EQ(r.encoding.num_bits, 3);
  // {0,1} and {2,3} easily fit in B^3 together.
  EXPECT_GE(r.embedded_constraints, 2);
  EXPECT_EQ(count_satisfied_constraints(small_set(), r.encoding),
            r.embedded_constraints);
}

TEST(NovaLike, EmbeddedConstraintsAreActuallySatisfied) {
  ConstraintSet cs = small_set();
  NovaLikeResult r = nova_like_encode(cs);
  int satisfied = count_satisfied_constraints(cs, r.encoding);
  EXPECT_EQ(satisfied, r.embedded_constraints);
}

TEST(NovaLike, SkipsImpossibleConstraintGracefully) {
  // 4 symbols in B^2: {0,1,2} cannot be embedded (no spare code).
  ConstraintSet cs;
  cs.num_symbols = 4;
  cs.add({0, 1, 2});
  NovaLikeResult r = nova_like_encode(cs);
  EXPECT_EQ(r.encoding.validate(), "");
  EXPECT_EQ(r.skipped_constraints, 1);
}

TEST(NovaLike, IoFlavourKeepsSatisfiedConstraints) {
  ConstraintSet cs = small_set();
  NovaLikeOptions opt;
  opt.adjacency = {{0, 5, 3.0}, {1, 4, 2.0}};
  NovaLikeResult plain = nova_like_encode(cs);
  NovaLikeResult io = nova_like_encode(cs, opt);
  EXPECT_EQ(io.encoding.validate(), "");
  EXPECT_GE(count_satisfied_constraints(cs, io.encoding),
            count_satisfied_constraints(cs, plain.encoding));
}

TEST(EncLike, ValidAndRefinementNeverHurts) {
  ConstraintSet cs = small_set();
  EncLikeOptions fast;
  fast.minimize_in_loop = false;
  EncLikeOptions full;
  EncLikeResult r1 = enc_like_encode(cs, fast);
  EncLikeResult r2 = enc_like_encode(cs, full);
  EXPECT_EQ(r1.encoding.validate(), "");
  EXPECT_EQ(r2.encoding.validate(), "");
  EXPECT_LE(evaluate_constraints(cs, r2.encoding).total_cubes,
            evaluate_constraints(cs, r1.encoding).total_cubes);
  EXPECT_GT(r2.espresso_calls, 0);
}

TEST(Exact, FindsOptimumOnTinyProblem) {
  // 4 symbols in B^2 with constraints {0,1} and {2,3}: both satisfiable
  // simultaneously -> optimal total = 2 cubes.
  ConstraintSet cs;
  cs.num_symbols = 4;
  cs.add({0, 1});
  cs.add({2, 3});
  ExactResult r = exact_encode(cs);
  EXPECT_EQ(r.best_cost, 2);
  EXPECT_EQ(evaluate_constraints(cs, r.encoding).total_cubes, 2);
}

TEST(Exact, MaxSatisfiedObjective) {
  ConstraintSet cs;
  cs.num_symbols = 4;
  cs.add({0, 1});
  cs.add({1, 2});
  ExactOptions opt;
  opt.objective = ExactObjective::kMaxSatisfiedConstraints;
  ExactResult r = exact_encode(cs, opt);
  // Both are satisfiable: place 1 adjacent to both 0 and 2.
  EXPECT_EQ(-r.best_cost, 2);
}

TEST(Exact, ThrowsOnOversizedProblem) {
  ConstraintSet cs;
  cs.num_symbols = 20;
  ExactOptions opt;
  opt.max_candidates = 1000;
  EXPECT_THROW(exact_encode(cs, opt), std::invalid_argument);
}

TEST(Exact, HeuristicsNeverBeatExact) {
  std::mt19937 rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    int n = 5 + static_cast<int>(rng() % 2);  // 5..6 symbols
    ConstraintSet cs;
    cs.num_symbols = n;
    for (int k = 0; k < 3; ++k) {
      std::vector<int> members;
      for (int s = 0; s < n; ++s)
        if (rng() % 2) members.push_back(s);
      cs.add(std::move(members));
    }
    ExactResult best = exact_encode(cs);
    for (int cost :
         {evaluate_constraints(cs, nova_like_encode(cs).encoding).total_cubes,
          evaluate_constraints(cs, enc_like_encode(cs).encoding).total_cubes}) {
      EXPECT_GE(cost, best.best_cost);
    }
  }
}

}  // namespace
}  // namespace picola
