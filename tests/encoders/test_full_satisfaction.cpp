#include <gtest/gtest.h>

#include "constraints/dichotomy.h"
#include "encoders/full_satisfaction.h"

namespace picola {
namespace {

TEST(FullSatisfaction, AlreadySatisfiableAtMinimum) {
  ConstraintSet cs;
  cs.num_symbols = 4;
  cs.add({0, 1});
  cs.add({2, 3});
  FullSatisfactionResult r = satisfy_all_constraints(cs);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.bits_needed, 2);
  EXPECT_EQ(count_satisfied_constraints(cs, r.encoding), 2);
}

TEST(FullSatisfaction, NeedsOneExtraBit) {
  // Two overlapping chains over 4 symbols in B^2 cannot all be faces; B^3
  // has room.
  ConstraintSet cs;
  cs.num_symbols = 4;
  cs.add({0, 1, 2});
  cs.add({1, 2, 3});
  cs.add({0, 3});
  FullSatisfactionResult r = satisfy_all_constraints(cs);
  ASSERT_TRUE(r.success);
  EXPECT_GT(r.bits_needed, 2);
  EXPECT_EQ(count_satisfied_constraints(cs, r.encoding), cs.size());
  EXPECT_EQ(r.encoding.validate(), "");
}

TEST(FullSatisfaction, RespectsMaxBits) {
  ConstraintSet cs;
  cs.num_symbols = 4;
  cs.add({0, 1, 2});
  cs.add({1, 2, 3});
  cs.add({0, 3});
  FullSatisfactionOptions opt;
  opt.max_bits = 2;
  FullSatisfactionResult r = satisfy_all_constraints(cs, opt);
  EXPECT_FALSE(r.success);
}

TEST(FullSatisfaction, EmptyConstraintSetTrivial) {
  ConstraintSet cs;
  cs.num_symbols = 5;
  FullSatisfactionResult r = satisfy_all_constraints(cs);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.bits_needed, 3);
}

}  // namespace
}  // namespace picola
