#pragma once
// Shared helpers for the test suites: terse cube/cover builders and a
// deterministic random-function generator for property tests.

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "cube/cover.h"

namespace picola::test {

/// Build a cube over a binary space from a literal string like "01-1"
/// ('0', '1', '-').
inline Cube bcube(const CubeSpace& s, const std::string& lits) {
  Cube c = Cube::full(s);
  for (int v = 0; v < s.num_vars(); ++v) {
    char ch = lits[static_cast<size_t>(v)];
    if (ch == '0') c.set_binary(s, v, 0);
    if (ch == '1') c.set_binary(s, v, 1);
  }
  return c;
}

/// Build a cover over a binary space from literal strings.
inline Cover bcover(const CubeSpace& s, const std::vector<std::string>& rows) {
  Cover f(s);
  for (const auto& r : rows) f.add(bcube(s, r));
  return f;
}

/// Deterministic random cover: `ncubes` cubes over `s`, each literal kept
/// full with probability `dash_prob`, otherwise restricted to a random
/// non-empty part subset (for binary vars: a single part).
inline Cover random_cover(const CubeSpace& s, int ncubes, std::mt19937& rng,
                          double dash_prob = 0.4) {
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  Cover f(s);
  for (int i = 0; i < ncubes; ++i) {
    Cube c = Cube::full(s);
    for (int v = 0; v < s.num_vars(); ++v) {
      if (coin(rng) < dash_prob) continue;
      c.clear_var(s, v);
      int parts = s.parts(v);
      // Pick a random non-empty strict subset (single part for binary).
      if (parts == 2) {
        c.set(s, v, static_cast<int>(rng() % 2));
      } else {
        int k = 1 + static_cast<int>(rng() % static_cast<uint32_t>(parts - 1));
        std::vector<int> idx(static_cast<size_t>(parts));
        for (int p = 0; p < parts; ++p) idx[static_cast<size_t>(p)] = p;
        std::shuffle(idx.begin(), idx.end(), rng);
        for (int j = 0; j < k; ++j) c.set(s, v, idx[static_cast<size_t>(j)]);
      }
    }
    f.add(c);
  }
  return f;
}

/// Exhaustively compare two covers as minterm sets (small spaces only).
inline bool same_function(const Cover& a, const Cover& b) {
  bool same = true;
  Cover::for_each_minterm(a.space(), [&](const std::vector<int>& m) {
    if (a.covers_minterm(m) != b.covers_minterm(m)) same = false;
  });
  return same;
}

/// True when `f` covers every minterm that `g` covers (f ⊇ g), checked
/// exhaustively.
inline bool covers_all_of(const Cover& f, const Cover& g) {
  bool ok = true;
  Cover::for_each_minterm(f.space(), [&](const std::vector<int>& m) {
    if (g.covers_minterm(m) && !f.covers_minterm(m)) ok = false;
  });
  return ok;
}

}  // namespace picola::test
