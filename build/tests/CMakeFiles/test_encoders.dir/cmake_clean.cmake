file(REMOVE_RECURSE
  "CMakeFiles/test_encoders.dir/encoders/test_annealing.cpp.o"
  "CMakeFiles/test_encoders.dir/encoders/test_annealing.cpp.o.d"
  "CMakeFiles/test_encoders.dir/encoders/test_encoders.cpp.o"
  "CMakeFiles/test_encoders.dir/encoders/test_encoders.cpp.o.d"
  "CMakeFiles/test_encoders.dir/encoders/test_full_satisfaction.cpp.o"
  "CMakeFiles/test_encoders.dir/encoders/test_full_satisfaction.cpp.o.d"
  "test_encoders"
  "test_encoders.pdb"
  "test_encoders[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_encoders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
