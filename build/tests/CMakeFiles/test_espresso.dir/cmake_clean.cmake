file(REMOVE_RECURSE
  "CMakeFiles/test_espresso.dir/espresso/test_complement.cpp.o"
  "CMakeFiles/test_espresso.dir/espresso/test_complement.cpp.o.d"
  "CMakeFiles/test_espresso.dir/espresso/test_cross_check.cpp.o"
  "CMakeFiles/test_espresso.dir/espresso/test_cross_check.cpp.o.d"
  "CMakeFiles/test_espresso.dir/espresso/test_exact.cpp.o"
  "CMakeFiles/test_espresso.dir/espresso/test_exact.cpp.o.d"
  "CMakeFiles/test_espresso.dir/espresso/test_minimize.cpp.o"
  "CMakeFiles/test_espresso.dir/espresso/test_minimize.cpp.o.d"
  "CMakeFiles/test_espresso.dir/espresso/test_properties.cpp.o"
  "CMakeFiles/test_espresso.dir/espresso/test_properties.cpp.o.d"
  "CMakeFiles/test_espresso.dir/espresso/test_tautology.cpp.o"
  "CMakeFiles/test_espresso.dir/espresso/test_tautology.cpp.o.d"
  "test_espresso"
  "test_espresso.pdb"
  "test_espresso[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_espresso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
