
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/espresso/test_complement.cpp" "tests/CMakeFiles/test_espresso.dir/espresso/test_complement.cpp.o" "gcc" "tests/CMakeFiles/test_espresso.dir/espresso/test_complement.cpp.o.d"
  "/root/repo/tests/espresso/test_cross_check.cpp" "tests/CMakeFiles/test_espresso.dir/espresso/test_cross_check.cpp.o" "gcc" "tests/CMakeFiles/test_espresso.dir/espresso/test_cross_check.cpp.o.d"
  "/root/repo/tests/espresso/test_exact.cpp" "tests/CMakeFiles/test_espresso.dir/espresso/test_exact.cpp.o" "gcc" "tests/CMakeFiles/test_espresso.dir/espresso/test_exact.cpp.o.d"
  "/root/repo/tests/espresso/test_minimize.cpp" "tests/CMakeFiles/test_espresso.dir/espresso/test_minimize.cpp.o" "gcc" "tests/CMakeFiles/test_espresso.dir/espresso/test_minimize.cpp.o.d"
  "/root/repo/tests/espresso/test_properties.cpp" "tests/CMakeFiles/test_espresso.dir/espresso/test_properties.cpp.o" "gcc" "tests/CMakeFiles/test_espresso.dir/espresso/test_properties.cpp.o.d"
  "/root/repo/tests/espresso/test_tautology.cpp" "tests/CMakeFiles/test_espresso.dir/espresso/test_tautology.cpp.o" "gcc" "tests/CMakeFiles/test_espresso.dir/espresso/test_tautology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/picola.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
