# Empty dependencies file for test_stateassign.
# This may be replaced when dependencies are built.
