file(REMOVE_RECURSE
  "CMakeFiles/test_stateassign.dir/stateassign/test_blif.cpp.o"
  "CMakeFiles/test_stateassign.dir/stateassign/test_blif.cpp.o.d"
  "CMakeFiles/test_stateassign.dir/stateassign/test_state_assign.cpp.o"
  "CMakeFiles/test_stateassign.dir/stateassign/test_state_assign.cpp.o.d"
  "test_stateassign"
  "test_stateassign.pdb"
  "test_stateassign[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stateassign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
