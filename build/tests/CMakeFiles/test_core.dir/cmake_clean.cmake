file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_feasibility.cpp.o"
  "CMakeFiles/test_core.dir/core/test_feasibility.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_input_encoding.cpp.o"
  "CMakeFiles/test_core.dir/core/test_input_encoding.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_matrix_invariants.cpp.o"
  "CMakeFiles/test_core.dir/core/test_matrix_invariants.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_picola.cpp.o"
  "CMakeFiles/test_core.dir/core/test_picola.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_theorem1.cpp.o"
  "CMakeFiles/test_core.dir/core/test_theorem1.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
