
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_feasibility.cpp" "tests/CMakeFiles/test_core.dir/core/test_feasibility.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_feasibility.cpp.o.d"
  "/root/repo/tests/core/test_input_encoding.cpp" "tests/CMakeFiles/test_core.dir/core/test_input_encoding.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_input_encoding.cpp.o.d"
  "/root/repo/tests/core/test_matrix_invariants.cpp" "tests/CMakeFiles/test_core.dir/core/test_matrix_invariants.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_matrix_invariants.cpp.o.d"
  "/root/repo/tests/core/test_picola.cpp" "tests/CMakeFiles/test_core.dir/core/test_picola.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_picola.cpp.o.d"
  "/root/repo/tests/core/test_theorem1.cpp" "tests/CMakeFiles/test_core.dir/core/test_theorem1.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_theorem1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/picola.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
