
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/kiss/test_generator.cpp" "tests/CMakeFiles/test_kiss.dir/kiss/test_generator.cpp.o" "gcc" "tests/CMakeFiles/test_kiss.dir/kiss/test_generator.cpp.o.d"
  "/root/repo/tests/kiss/test_kiss.cpp" "tests/CMakeFiles/test_kiss.dir/kiss/test_kiss.cpp.o" "gcc" "tests/CMakeFiles/test_kiss.dir/kiss/test_kiss.cpp.o.d"
  "/root/repo/tests/kiss/test_minimize_states.cpp" "tests/CMakeFiles/test_kiss.dir/kiss/test_minimize_states.cpp.o" "gcc" "tests/CMakeFiles/test_kiss.dir/kiss/test_minimize_states.cpp.o.d"
  "/root/repo/tests/kiss/test_simulator.cpp" "tests/CMakeFiles/test_kiss.dir/kiss/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/test_kiss.dir/kiss/test_simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/picola.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
