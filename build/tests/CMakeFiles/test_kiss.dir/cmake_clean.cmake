file(REMOVE_RECURSE
  "CMakeFiles/test_kiss.dir/kiss/test_generator.cpp.o"
  "CMakeFiles/test_kiss.dir/kiss/test_generator.cpp.o.d"
  "CMakeFiles/test_kiss.dir/kiss/test_kiss.cpp.o"
  "CMakeFiles/test_kiss.dir/kiss/test_kiss.cpp.o.d"
  "CMakeFiles/test_kiss.dir/kiss/test_minimize_states.cpp.o"
  "CMakeFiles/test_kiss.dir/kiss/test_minimize_states.cpp.o.d"
  "CMakeFiles/test_kiss.dir/kiss/test_simulator.cpp.o"
  "CMakeFiles/test_kiss.dir/kiss/test_simulator.cpp.o.d"
  "test_kiss"
  "test_kiss.pdb"
  "test_kiss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kiss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
