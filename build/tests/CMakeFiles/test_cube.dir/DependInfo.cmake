
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cube/test_algebra.cpp" "tests/CMakeFiles/test_cube.dir/cube/test_algebra.cpp.o" "gcc" "tests/CMakeFiles/test_cube.dir/cube/test_algebra.cpp.o.d"
  "/root/repo/tests/cube/test_cover.cpp" "tests/CMakeFiles/test_cube.dir/cube/test_cover.cpp.o" "gcc" "tests/CMakeFiles/test_cube.dir/cube/test_cover.cpp.o.d"
  "/root/repo/tests/cube/test_cube.cpp" "tests/CMakeFiles/test_cube.dir/cube/test_cube.cpp.o" "gcc" "tests/CMakeFiles/test_cube.dir/cube/test_cube.cpp.o.d"
  "/root/repo/tests/cube/test_space.cpp" "tests/CMakeFiles/test_cube.dir/cube/test_space.cpp.o" "gcc" "tests/CMakeFiles/test_cube.dir/cube/test_space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/picola.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
