file(REMOVE_RECURSE
  "CMakeFiles/test_cube.dir/cube/test_algebra.cpp.o"
  "CMakeFiles/test_cube.dir/cube/test_algebra.cpp.o.d"
  "CMakeFiles/test_cube.dir/cube/test_cover.cpp.o"
  "CMakeFiles/test_cube.dir/cube/test_cover.cpp.o.d"
  "CMakeFiles/test_cube.dir/cube/test_cube.cpp.o"
  "CMakeFiles/test_cube.dir/cube/test_cube.cpp.o.d"
  "CMakeFiles/test_cube.dir/cube/test_space.cpp.o"
  "CMakeFiles/test_cube.dir/cube/test_space.cpp.o.d"
  "test_cube"
  "test_cube.pdb"
  "test_cube[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
