
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/constraints/test_constraint_io.cpp" "tests/CMakeFiles/test_constraints.dir/constraints/test_constraint_io.cpp.o" "gcc" "tests/CMakeFiles/test_constraints.dir/constraints/test_constraint_io.cpp.o.d"
  "/root/repo/tests/constraints/test_constraint_matrix.cpp" "tests/CMakeFiles/test_constraints.dir/constraints/test_constraint_matrix.cpp.o" "gcc" "tests/CMakeFiles/test_constraints.dir/constraints/test_constraint_matrix.cpp.o.d"
  "/root/repo/tests/constraints/test_constraints.cpp" "tests/CMakeFiles/test_constraints.dir/constraints/test_constraints.cpp.o" "gcc" "tests/CMakeFiles/test_constraints.dir/constraints/test_constraints.cpp.o.d"
  "/root/repo/tests/constraints/test_derive.cpp" "tests/CMakeFiles/test_constraints.dir/constraints/test_derive.cpp.o" "gcc" "tests/CMakeFiles/test_constraints.dir/constraints/test_derive.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/picola.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
