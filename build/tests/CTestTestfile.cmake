# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_cube[1]_include.cmake")
include("/root/repo/build/tests/test_espresso[1]_include.cmake")
include("/root/repo/build/tests/test_pla[1]_include.cmake")
include("/root/repo/build/tests/test_kiss[1]_include.cmake")
include("/root/repo/build/tests/test_constraints[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_encoders[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
include("/root/repo/build/tests/test_stateassign[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
