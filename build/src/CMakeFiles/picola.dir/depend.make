# Empty dependencies file for picola.
# This may be replaced when dependencies are built.
