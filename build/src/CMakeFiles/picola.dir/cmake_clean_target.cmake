file(REMOVE_RECURSE
  "libpicola.a"
)
