
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cli/cli.cpp" "src/CMakeFiles/picola.dir/cli/cli.cpp.o" "gcc" "src/CMakeFiles/picola.dir/cli/cli.cpp.o.d"
  "/root/repo/src/constraints/constraint_io.cpp" "src/CMakeFiles/picola.dir/constraints/constraint_io.cpp.o" "gcc" "src/CMakeFiles/picola.dir/constraints/constraint_io.cpp.o.d"
  "/root/repo/src/constraints/constraint_matrix.cpp" "src/CMakeFiles/picola.dir/constraints/constraint_matrix.cpp.o" "gcc" "src/CMakeFiles/picola.dir/constraints/constraint_matrix.cpp.o.d"
  "/root/repo/src/constraints/derive.cpp" "src/CMakeFiles/picola.dir/constraints/derive.cpp.o" "gcc" "src/CMakeFiles/picola.dir/constraints/derive.cpp.o.d"
  "/root/repo/src/constraints/dichotomy.cpp" "src/CMakeFiles/picola.dir/constraints/dichotomy.cpp.o" "gcc" "src/CMakeFiles/picola.dir/constraints/dichotomy.cpp.o.d"
  "/root/repo/src/constraints/face_constraint.cpp" "src/CMakeFiles/picola.dir/constraints/face_constraint.cpp.o" "gcc" "src/CMakeFiles/picola.dir/constraints/face_constraint.cpp.o.d"
  "/root/repo/src/core/feasibility.cpp" "src/CMakeFiles/picola.dir/core/feasibility.cpp.o" "gcc" "src/CMakeFiles/picola.dir/core/feasibility.cpp.o.d"
  "/root/repo/src/core/guide.cpp" "src/CMakeFiles/picola.dir/core/guide.cpp.o" "gcc" "src/CMakeFiles/picola.dir/core/guide.cpp.o.d"
  "/root/repo/src/core/input_encoding.cpp" "src/CMakeFiles/picola.dir/core/input_encoding.cpp.o" "gcc" "src/CMakeFiles/picola.dir/core/input_encoding.cpp.o.d"
  "/root/repo/src/core/picola.cpp" "src/CMakeFiles/picola.dir/core/picola.cpp.o" "gcc" "src/CMakeFiles/picola.dir/core/picola.cpp.o.d"
  "/root/repo/src/core/theorem1.cpp" "src/CMakeFiles/picola.dir/core/theorem1.cpp.o" "gcc" "src/CMakeFiles/picola.dir/core/theorem1.cpp.o.d"
  "/root/repo/src/cube/algebra.cpp" "src/CMakeFiles/picola.dir/cube/algebra.cpp.o" "gcc" "src/CMakeFiles/picola.dir/cube/algebra.cpp.o.d"
  "/root/repo/src/cube/cover.cpp" "src/CMakeFiles/picola.dir/cube/cover.cpp.o" "gcc" "src/CMakeFiles/picola.dir/cube/cover.cpp.o.d"
  "/root/repo/src/cube/cube.cpp" "src/CMakeFiles/picola.dir/cube/cube.cpp.o" "gcc" "src/CMakeFiles/picola.dir/cube/cube.cpp.o.d"
  "/root/repo/src/cube/space.cpp" "src/CMakeFiles/picola.dir/cube/space.cpp.o" "gcc" "src/CMakeFiles/picola.dir/cube/space.cpp.o.d"
  "/root/repo/src/encoders/annealing.cpp" "src/CMakeFiles/picola.dir/encoders/annealing.cpp.o" "gcc" "src/CMakeFiles/picola.dir/encoders/annealing.cpp.o.d"
  "/root/repo/src/encoders/enc_like.cpp" "src/CMakeFiles/picola.dir/encoders/enc_like.cpp.o" "gcc" "src/CMakeFiles/picola.dir/encoders/enc_like.cpp.o.d"
  "/root/repo/src/encoders/encoding.cpp" "src/CMakeFiles/picola.dir/encoders/encoding.cpp.o" "gcc" "src/CMakeFiles/picola.dir/encoders/encoding.cpp.o.d"
  "/root/repo/src/encoders/exact.cpp" "src/CMakeFiles/picola.dir/encoders/exact.cpp.o" "gcc" "src/CMakeFiles/picola.dir/encoders/exact.cpp.o.d"
  "/root/repo/src/encoders/full_satisfaction.cpp" "src/CMakeFiles/picola.dir/encoders/full_satisfaction.cpp.o" "gcc" "src/CMakeFiles/picola.dir/encoders/full_satisfaction.cpp.o.d"
  "/root/repo/src/encoders/nova_like.cpp" "src/CMakeFiles/picola.dir/encoders/nova_like.cpp.o" "gcc" "src/CMakeFiles/picola.dir/encoders/nova_like.cpp.o.d"
  "/root/repo/src/encoders/trivial.cpp" "src/CMakeFiles/picola.dir/encoders/trivial.cpp.o" "gcc" "src/CMakeFiles/picola.dir/encoders/trivial.cpp.o.d"
  "/root/repo/src/espresso/complement.cpp" "src/CMakeFiles/picola.dir/espresso/complement.cpp.o" "gcc" "src/CMakeFiles/picola.dir/espresso/complement.cpp.o.d"
  "/root/repo/src/espresso/essential.cpp" "src/CMakeFiles/picola.dir/espresso/essential.cpp.o" "gcc" "src/CMakeFiles/picola.dir/espresso/essential.cpp.o.d"
  "/root/repo/src/espresso/exact.cpp" "src/CMakeFiles/picola.dir/espresso/exact.cpp.o" "gcc" "src/CMakeFiles/picola.dir/espresso/exact.cpp.o.d"
  "/root/repo/src/espresso/expand.cpp" "src/CMakeFiles/picola.dir/espresso/expand.cpp.o" "gcc" "src/CMakeFiles/picola.dir/espresso/expand.cpp.o.d"
  "/root/repo/src/espresso/irredundant.cpp" "src/CMakeFiles/picola.dir/espresso/irredundant.cpp.o" "gcc" "src/CMakeFiles/picola.dir/espresso/irredundant.cpp.o.d"
  "/root/repo/src/espresso/minimize.cpp" "src/CMakeFiles/picola.dir/espresso/minimize.cpp.o" "gcc" "src/CMakeFiles/picola.dir/espresso/minimize.cpp.o.d"
  "/root/repo/src/espresso/reduce.cpp" "src/CMakeFiles/picola.dir/espresso/reduce.cpp.o" "gcc" "src/CMakeFiles/picola.dir/espresso/reduce.cpp.o.d"
  "/root/repo/src/espresso/tautology.cpp" "src/CMakeFiles/picola.dir/espresso/tautology.cpp.o" "gcc" "src/CMakeFiles/picola.dir/espresso/tautology.cpp.o.d"
  "/root/repo/src/espresso/unate.cpp" "src/CMakeFiles/picola.dir/espresso/unate.cpp.o" "gcc" "src/CMakeFiles/picola.dir/espresso/unate.cpp.o.d"
  "/root/repo/src/espresso/verify.cpp" "src/CMakeFiles/picola.dir/espresso/verify.cpp.o" "gcc" "src/CMakeFiles/picola.dir/espresso/verify.cpp.o.d"
  "/root/repo/src/eval/constraint_eval.cpp" "src/CMakeFiles/picola.dir/eval/constraint_eval.cpp.o" "gcc" "src/CMakeFiles/picola.dir/eval/constraint_eval.cpp.o.d"
  "/root/repo/src/eval/metrics.cpp" "src/CMakeFiles/picola.dir/eval/metrics.cpp.o" "gcc" "src/CMakeFiles/picola.dir/eval/metrics.cpp.o.d"
  "/root/repo/src/kiss/benchmarks.cpp" "src/CMakeFiles/picola.dir/kiss/benchmarks.cpp.o" "gcc" "src/CMakeFiles/picola.dir/kiss/benchmarks.cpp.o.d"
  "/root/repo/src/kiss/fsm.cpp" "src/CMakeFiles/picola.dir/kiss/fsm.cpp.o" "gcc" "src/CMakeFiles/picola.dir/kiss/fsm.cpp.o.d"
  "/root/repo/src/kiss/generator.cpp" "src/CMakeFiles/picola.dir/kiss/generator.cpp.o" "gcc" "src/CMakeFiles/picola.dir/kiss/generator.cpp.o.d"
  "/root/repo/src/kiss/kiss_io.cpp" "src/CMakeFiles/picola.dir/kiss/kiss_io.cpp.o" "gcc" "src/CMakeFiles/picola.dir/kiss/kiss_io.cpp.o.d"
  "/root/repo/src/kiss/minimize_states.cpp" "src/CMakeFiles/picola.dir/kiss/minimize_states.cpp.o" "gcc" "src/CMakeFiles/picola.dir/kiss/minimize_states.cpp.o.d"
  "/root/repo/src/kiss/simulator.cpp" "src/CMakeFiles/picola.dir/kiss/simulator.cpp.o" "gcc" "src/CMakeFiles/picola.dir/kiss/simulator.cpp.o.d"
  "/root/repo/src/pla/mv_pla.cpp" "src/CMakeFiles/picola.dir/pla/mv_pla.cpp.o" "gcc" "src/CMakeFiles/picola.dir/pla/mv_pla.cpp.o.d"
  "/root/repo/src/pla/pla.cpp" "src/CMakeFiles/picola.dir/pla/pla.cpp.o" "gcc" "src/CMakeFiles/picola.dir/pla/pla.cpp.o.d"
  "/root/repo/src/pla/pla_io.cpp" "src/CMakeFiles/picola.dir/pla/pla_io.cpp.o" "gcc" "src/CMakeFiles/picola.dir/pla/pla_io.cpp.o.d"
  "/root/repo/src/stateassign/assemble.cpp" "src/CMakeFiles/picola.dir/stateassign/assemble.cpp.o" "gcc" "src/CMakeFiles/picola.dir/stateassign/assemble.cpp.o.d"
  "/root/repo/src/stateassign/blif.cpp" "src/CMakeFiles/picola.dir/stateassign/blif.cpp.o" "gcc" "src/CMakeFiles/picola.dir/stateassign/blif.cpp.o.d"
  "/root/repo/src/stateassign/state_assign.cpp" "src/CMakeFiles/picola.dir/stateassign/state_assign.cpp.o" "gcc" "src/CMakeFiles/picola.dir/stateassign/state_assign.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
