# Empty dependencies file for ablation_picola.
# This may be replaced when dependencies are built.
