file(REMOVE_RECURSE
  "CMakeFiles/ablation_picola.dir/ablation_picola.cpp.o"
  "CMakeFiles/ablation_picola.dir/ablation_picola.cpp.o.d"
  "ablation_picola"
  "ablation_picola.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_picola.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
