file(REMOVE_RECURSE
  "CMakeFiles/table2_stateassign.dir/table2_stateassign.cpp.o"
  "CMakeFiles/table2_stateassign.dir/table2_stateassign.cpp.o.d"
  "table2_stateassign"
  "table2_stateassign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_stateassign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
