# Empty dependencies file for table2_stateassign.
# This may be replaced when dependencies are built.
