# Empty dependencies file for onehot_tradeoff.
# This may be replaced when dependencies are built.
