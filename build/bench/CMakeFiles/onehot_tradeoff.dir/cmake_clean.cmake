file(REMOVE_RECURSE
  "CMakeFiles/onehot_tradeoff.dir/onehot_tradeoff.cpp.o"
  "CMakeFiles/onehot_tradeoff.dir/onehot_tradeoff.cpp.o.d"
  "onehot_tradeoff"
  "onehot_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onehot_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
