file(REMOVE_RECURSE
  "CMakeFiles/encoder_comparison.dir/encoder_comparison.cpp.o"
  "CMakeFiles/encoder_comparison.dir/encoder_comparison.cpp.o.d"
  "encoder_comparison"
  "encoder_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encoder_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
