# Empty compiler generated dependencies file for table1_encoding.
# This may be replaced when dependencies are built.
