file(REMOVE_RECURSE
  "CMakeFiles/table1_encoding.dir/table1_encoding.cpp.o"
  "CMakeFiles/table1_encoding.dir/table1_encoding.cpp.o.d"
  "table1_encoding"
  "table1_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
