# Empty dependencies file for length_sweep.
# This may be replaced when dependencies are built.
