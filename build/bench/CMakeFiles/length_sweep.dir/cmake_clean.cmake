file(REMOVE_RECURSE
  "CMakeFiles/length_sweep.dir/length_sweep.cpp.o"
  "CMakeFiles/length_sweep.dir/length_sweep.cpp.o.d"
  "length_sweep"
  "length_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/length_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
