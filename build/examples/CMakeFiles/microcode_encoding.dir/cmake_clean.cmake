file(REMOVE_RECURSE
  "CMakeFiles/microcode_encoding.dir/microcode_encoding.cpp.o"
  "CMakeFiles/microcode_encoding.dir/microcode_encoding.cpp.o.d"
  "microcode_encoding"
  "microcode_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microcode_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
