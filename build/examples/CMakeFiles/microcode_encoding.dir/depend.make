# Empty dependencies file for microcode_encoding.
# This may be replaced when dependencies are built.
