file(REMOVE_RECURSE
  "CMakeFiles/state_assignment.dir/state_assignment.cpp.o"
  "CMakeFiles/state_assignment.dir/state_assignment.cpp.o.d"
  "state_assignment"
  "state_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
