# Empty dependencies file for state_assignment.
# This may be replaced when dependencies are built.
