file(REMOVE_RECURSE
  "CMakeFiles/symbolic_pla.dir/symbolic_pla.cpp.o"
  "CMakeFiles/symbolic_pla.dir/symbolic_pla.cpp.o.d"
  "symbolic_pla"
  "symbolic_pla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbolic_pla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
