# Empty compiler generated dependencies file for symbolic_pla.
# This may be replaced when dependencies are built.
