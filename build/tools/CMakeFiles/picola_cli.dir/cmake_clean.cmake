file(REMOVE_RECURSE
  "CMakeFiles/picola_cli.dir/picola_cli.cpp.o"
  "CMakeFiles/picola_cli.dir/picola_cli.cpp.o.d"
  "picola"
  "picola.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/picola_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
