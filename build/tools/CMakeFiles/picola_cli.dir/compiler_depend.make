# Empty compiler generated dependencies file for picola_cli.
# This may be replaced when dependencies are built.
